package experiments

import (
	"fmt"

	"dynamo/internal/obs/profile"
	"dynamo/internal/runner"
	"dynamo/internal/stats"
)

// profiledRun executes one workload under one policy with the contention
// profiler attached and returns the hot-line report. Profiled runs carry
// their own digest (the top-K is part of it), so the profiler's per-run
// state never contaminates shared cache entries.
func (s *Suite) profiledRun(wl, policy string, k int) (*profile.HotReport, error) {
	out, err := s.r.Run(runner.Request{
		Workload:    wl,
		Policy:      policy,
		Threads:     s.opts.Threads,
		Seed:        s.opts.Seed,
		Scale:       s.opts.Scale,
		ProfileTopK: k,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return out.Hot, nil
}

// profileCases contrasts the paper's two contention archetypes: radiosity's
// single hot queue lock (Section VI-B, where far AMOs win) and histogram's
// scattered bucket updates, each under the baseline and the headline
// predictor.
var profileCases = []struct{ workload, policy string }{
	{"radiosity", "all-near"},
	{"radiosity", "dynamo-reuse-pn"},
	{"histogram", "all-near"},
	{"histogram", "dynamo-reuse-pn"},
}

// ContentionProfile renders the hottest AMO cache lines per workload and
// policy, attributed to workload sites: which structures are contended, how
// the policy places their AMOs, and what coherence traffic they attract.
func (s *Suite) ContentionProfile() (*stats.Table, error) {
	const topK = 8
	t := &stats.Table{Header: []string{
		"workload", "policy", "site", "amos", "near", "far", "snoops", "sharers", "fwd", "hn-ticks"}}
	for _, c := range profileCases {
		rep, err := s.profiledRun(c.workload, c.policy, topK)
		if err != nil {
			return nil, err
		}
		for _, l := range rep.Lines {
			site := fmt.Sprintf("%#x", uint64(l.Line))
			if l.Site != "" {
				site = fmt.Sprintf("%s+%d", l.Site, l.Offset)
			}
			t.AddRow(c.workload, c.policy, site,
				fmt.Sprint(l.AMOs), fmt.Sprint(l.Near), fmt.Sprint(l.Far),
				fmt.Sprint(l.Snoops), stats.F(l.MeanSharers),
				fmt.Sprint(l.Forwards), stats.F(l.MeanHNTicks))
		}
	}
	return t, nil
}
