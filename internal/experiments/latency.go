package experiments

import (
	"fmt"

	"dynamo/internal/obs"
	"dynamo/internal/runner"
	"dynamo/internal/stats"
)

// observedRun executes one workload under one policy with the observability
// bus enabled and returns the run's report. Observed runs carry their own
// digest (the Observe flag is part of it), so they never share cache
// entries with unobserved runs and cache order stays invisible in the
// output.
func (s *Suite) observedRun(wl, policy string) (*obs.Report, error) {
	out, err := s.r.Run(runner.Request{
		Workload: wl,
		Policy:   policy,
		Threads:  s.opts.Threads,
		Seed:     s.opts.Seed,
		Scale:    s.opts.Scale,
		Observe:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return out.Result.Obs, nil
}

// latencyPolicies are the policies the breakdown contrasts: the paper's
// baseline, the best simple static policy, and the headline predictor.
var latencyPolicies = []string{"all-near", "unique-near", "dynamo-reuse-pn"}

// LatencyBreakdown renders the observability layer's latency-breakdown
// table for the histogram workload: per transaction class the end-to-end
// latency distribution, and under each class the per-phase decomposition
// (issue, NoC, HN directory including TBE wait, snoops, LLC/HBM data, ALU,
// response). share% is the class's share of all transaction cycles, and a
// phase's share of its class's attributed cycles.
func (s *Suite) LatencyBreakdown() (*stats.Table, error) {
	t := &stats.Table{Header: []string{"policy", "txn", "count", "mean", "p50", "p95", "p99", "share%"}}
	for _, policy := range latencyPolicies {
		rep, err := s.observedRun("histogram", policy)
		if err != nil {
			return nil, err
		}
		classSums := make([]float64, len(rep.Classes))
		for i, c := range rep.Classes {
			classSums[i] = float64(c.Sum)
		}
		total := stats.Sum(classSums)
		for i, c := range rep.Classes {
			t.AddRow(policy, c.Name, fmt.Sprint(c.Count), stats.F(c.Mean),
				stats.F(c.P50), stats.F(c.P95), stats.F(c.P99),
				stats.F(100*classSums[i]/total))
			var phaseSums []float64
			for _, p := range rep.Phases {
				if phaseOf(p.Name, c.Name) {
					phaseSums = append(phaseSums, float64(p.Sum))
				}
			}
			attributed := stats.Sum(phaseSums)
			for _, p := range rep.Phases {
				if !phaseOf(p.Name, c.Name) {
					continue
				}
				t.AddRow(policy, "  "+p.Name, fmt.Sprint(p.Count), stats.F(p.Mean),
					stats.F(p.P50), stats.F(p.P95), stats.F(p.P99),
					stats.F(100*float64(p.Sum)/attributed))
			}
		}
		// Spread of mean latency across classes: how unevenly this policy
		// treats the traffic mix.
		means := make([]float64, len(rep.Classes))
		for i, c := range rep.Classes {
			means[i] = c.Mean
		}
		t.AddRow(policy, "class-mean spread", fmt.Sprint(len(means)),
			stats.F(stats.Mean(means)), stats.F(stats.Percentile(means, 0.50)),
			stats.F(stats.Percentile(means, 0.95)), stats.F(stats.Percentile(means, 0.99)), "")
	}
	return t, nil
}

// phaseOf reports whether a "class/phase" summary name belongs to class.
func phaseOf(name, class string) bool {
	return len(name) > len(class) && name[:len(class)] == class && name[len(class)] == '/'
}
