package experiments

import (
	"fmt"

	"dynamo/internal/chi"
	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/memory"
	"dynamo/internal/stats"
	"dynamo/internal/workload"
)

// TableI prints the static AMO policy decision table from the implemented
// policies (so the output is asserted against the code, not hand-copied).
func (s *Suite) TableI() (*stats.Table, error) {
	t := &stats.Table{Header: []string{"policy", "UC", "UD", "SC", "SD", "I"}}
	rows := []struct {
		name string
		p    *core.Static
	}{
		{"All Near (existing)", core.AllNear()},
		{"Unique Near (existing)", core.UniqueNear()},
		{"Present Near (proposed)", core.PresentNear()},
		{"Dirty Near (proposed)", core.DirtyNear()},
		{"Shared Far (proposed)", core.SharedFar()},
	}
	short := func(p chi.Placement) string {
		if p == chi.Near {
			return "N"
		}
		return "F"
	}
	for _, r := range rows {
		tab := r.p.Table()
		t.AddRow(r.name, short(tab[0]), short(tab[1]), short(tab[2]), short(tab[3]), short(tab[4]))
	}
	return t, nil
}

// TableII prints the simulated system configuration.
func (s *Suite) TableII() (*stats.Table, error) {
	cfg := machine.DefaultConfig()
	t := &stats.Table{Header: []string{"parameter", "value"}}
	kib := func(sets, ways int) string {
		return fmt.Sprintf("%d KiB, %d-way", sets*ways*memory.LineSize/1024, ways)
	}
	t.AddRow("Cores", fmt.Sprint(cfg.Chi.Cores))
	t.AddRow("Store buffer", fmt.Sprintf("%d posted ops", cfg.CPU.StoreBuffer))
	t.AddRow("L1D cache", kib(cfg.Chi.L1Sets, cfg.Chi.L1Ways)+fmt.Sprintf(", %d-cycle", cfg.Chi.L1Latency))
	t.AddRow("L2 cache", kib(cfg.Chi.L2Sets, cfg.Chi.L2Ways)+fmt.Sprintf(", %d-cycle", cfg.Chi.L2Latency))
	t.AddRow("LLC", fmt.Sprintf("%d slices x %d KiB, %d-way, %d-cycle data",
		cfg.Chi.HNSlices, cfg.Chi.LLCSets*cfg.Chi.LLCWays*memory.LineSize/1024, cfg.Chi.LLCWays, cfg.Chi.LLCDataLatency))
	t.AddRow("AMT (DynAMO)", fmt.Sprintf("%d entries, %d-way, counter max %d",
		cfg.AMT.Entries, cfg.AMT.Ways, cfg.AMT.CounterMax))
	t.AddRow("AMO buffer", fmt.Sprintf("%d entries per HN slice", cfg.Chi.AMOBufEntries))
	t.AddRow("NoC", fmt.Sprintf("%dx%d mesh, %d-cycle route + %d-cycle link",
		cfg.Chi.Mesh.Width, cfg.Chi.Mesh.Height, cfg.Chi.Mesh.RouteLatency, cfg.Chi.Mesh.LinkLatency))
	t.AddRow("Memory", fmt.Sprintf("HBM-class, %d channels, %d-cycle latency",
		cfg.Chi.Mem.Channels, cfg.Chi.Mem.Latency))
	return t, nil
}

// TableIII prints the workload registry: suite, synchronization primitives
// and the measured AMO footprint of each benchmark analog.
func (s *Suite) TableIII() (*stats.Table, error) {
	t := &stats.Table{Header: []string{"workload", "code", "suite", "input", "sync primitives", "AMO footprint"}}
	for _, spec := range workload.All() {
		inst, err := spec.Build(workload.Params{Threads: s.opts.Threads, Seed: s.opts.Seed, Scale: s.opts.Scale})
		if err != nil {
			return nil, err
		}
		input := spec.DefaultInput()
		if input == "" {
			input = "synthetic"
		}
		fp := fmt.Sprintf("%d KB", inst.AMOFootprintBytes/1024)
		if inst.AMOFootprintBytes < 1024 {
			fp = fmt.Sprintf("%d B", inst.AMOFootprintBytes)
		}
		t.AddRow(spec.Name, spec.Code, spec.Suite, input, spec.Sync, fp)
	}
	return t, nil
}

// TableIV prints the qualitative comparison of synchronization
// alternatives, reproduced from the paper's Table IV.
func (s *Suite) TableIV() (*stats.Table, error) {
	t := &stats.Table{Header: []string{"solution", "transparent", "performance", "cost"}}
	t.AddRow("Far AMO", "yes", "no", "low")
	t.AddRow("Custom instructions", "no", "yes", "low")
	t.AddRow("Accelerators", "yes", "yes", "high")
	t.AddRow("Custom networks", "yes", "yes", "high")
	t.AddRow("Parallel reductions", "no", "yes", "high")
	t.AddRow("Core to core", "no", "yes", "low")
	t.AddRow("DynAMO", "yes", "yes", "low")
	return t, nil
}

// Energy reproduces the Section VI-E analysis: dynamic energy of Unique
// Near and DynAMO-Reuse-PN relative to All Near, per APKI set, plus the
// NoC-only ratio that grows for far-heavy workloads.
func (s *Suite) Energy() (*stats.Table, error) {
	policies := []string{"unique-near", "dynamo-reuse-pn"}
	if err := s.prefetchPolicies(policies, ""); err != nil {
		return nil, err
	}
	lmh, mh, h := classSets()
	low := make([]string, 0)
	for _, spec := range workload.All() {
		if spec.Class == workload.Low {
			low = append(low, spec.Name)
		}
	}
	_ = lmh
	sets := []struct {
		name  string
		names []string
	}{{"Low", low}, {"Medium+High", mh}, {"High", h}}
	t := &stats.Table{Header: []string{"set", "unique-near energy", "dynamo-reuse-pn energy", "dynamo NoC energy"}}
	ratio := func(wl, policy string) (total, nocOnly float64, err error) {
		base, err := s.run(runKey{workload: wl, policy: "all-near", threads: s.opts.Threads})
		if err != nil {
			return 0, 0, err
		}
		res, err := s.run(runKey{workload: wl, policy: policy, threads: s.opts.Threads})
		if err != nil {
			return 0, 0, err
		}
		return res.Energy.Total() / base.Energy.Total(), res.Energy.NoC / base.Energy.NoC, nil
	}
	for _, set := range sets {
		var un, pn, pnNoc []float64
		for _, wl := range set.names {
			u, _, err := ratio(wl, "unique-near")
			if err != nil {
				return nil, err
			}
			p, n, err := ratio(wl, "dynamo-reuse-pn")
			if err != nil {
				return nil, err
			}
			un = append(un, u)
			pn = append(pn, p)
			pnNoc = append(pnNoc, n)
		}
		t.AddRow(set.name, stats.F(stats.Geomean(un)), stats.F(stats.Geomean(pn)), stats.F(stats.Geomean(pnNoc)))
	}
	return t, nil
}

// HardwareCost reproduces the Section VI-G estimate: AMT bits per entry
// and bytes per core for the default and swept configurations.
func (s *Suite) HardwareCost() (*stats.Table, error) {
	t := &stats.Table{Header: []string{"AMT config", "bits/entry", "padded", "bytes/core"}}
	for _, cfg := range []core.AMTConfig{
		{Entries: 32, Ways: 4, CounterMax: 32},
		{Entries: 64, Ways: 4, CounterMax: 32},
		core.DefaultAMTConfig(),
		{Entries: 256, Ways: 4, CounterMax: 32},
		{Entries: 512, Ways: 4, CounterMax: 32},
	} {
		c := core.CostOf(cfg)
		t.AddRow(fmt.Sprintf("%d entries, %d-way, %d counter", cfg.Entries, cfg.Ways, cfg.CounterMax),
			fmt.Sprint(c.BitsPerEntry), fmt.Sprint(c.PaddedBitsPerEntry), fmt.Sprint(c.Bytes))
	}
	return t, nil
}
