// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns its data as a formatted
// table plus machine-readable rows; the dynamo-experiments command prints
// them, and EXPERIMENTS.md records paper-vs-measured values.
//
// All simulations run through internal/runner: identical (workload,
// policy, configuration) requests are deduplicated across every
// experiment in the suite, executed concurrently on a bounded worker
// pool, and — when a cache directory is configured — persisted so a
// repeated suite run simulates nothing. Each simulation is itself
// single-threaded and deterministic, so tables are byte-identical
// regardless of the worker count or cache state.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dynamo/internal/machine"
	"dynamo/internal/runner"
	"dynamo/internal/service"
	"dynamo/internal/stats"
	"dynamo/internal/telemetry"
	"dynamo/internal/workload"
)

// Options configures a suite run.
type Options struct {
	// Threads is the worker-thread count per simulation (default 32, the
	// paper's core count).
	Threads int
	// Seed drives workload generation (default 1).
	Seed int64
	// Scale multiplies workload sizes (default 1.0). Benchmarks use small
	// scales.
	Scale float64
	// Workers bounds concurrent simulations (default: host cores).
	Workers int
	// CacheDir, when non-empty, persists simulation results on disk (see
	// runner.Options.CacheDir); a warm cache re-simulates nothing.
	CacheDir string
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Retries re-executes transiently failed jobs before quarantine (see
	// runner.Options.Retries).
	Retries int
	// CkptEvery, with a cache directory, checkpoints running jobs every
	// CkptEvery events so a killed suite run can resume.
	CkptEvery uint64
	// Resume restores interrupted jobs from their persisted checkpoints.
	Resume bool
	// Interrupt, when non-nil, cancels the suite once signaled or closed.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, receives sweep metrics and per-job trace
	// spans (see internal/telemetry); results are unaffected.
	Telemetry *telemetry.Sweep
	// Remote, when non-empty, routes job execution to a sweep service at
	// this address (see internal/service): the local runner keeps its
	// dedupe, cache and telemetry semantics, but every cache-missing
	// simulation runs on the server and comes back as the server's
	// cache-entry bytes, so the tables are byte-identical to a local run.
	Remote string
	// RemoteDeadline, when positive with Remote set, bounds every remote
	// job's wait and rides along as the sweep's wire deadline, so the
	// server abandons work this suite stopped watching.
	RemoteDeadline time.Duration
}

func (o Options) fill() Options {
	if o.Threads == 0 {
		o.Threads = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Suite runs experiments on a shared sweep runner, so Best Static bars,
// shared baselines and repeated sweeps are simulated once.
type Suite struct {
	opts Options
	r    *runner.Runner
}

// runKey identifies one cached simulation within the suite; the runner
// adds the suite-wide seed and scale to form the full request.
type runKey struct {
	workload string
	policy   string
	input    string
	threads  int
	// sysVariant names a non-default system configuration (Fig. 10/11).
	sysVariant string
}

// NewSuite builds a suite.
func NewSuite(o Options) *Suite {
	o = o.fill()
	ro := runner.Options{
		Jobs:      o.Workers,
		CacheDir:  o.CacheDir,
		Log:       o.Log,
		Retries:   o.Retries,
		CkptEvery: o.CkptEvery,
		Resume:    o.Resume,
		Interrupt: o.Interrupt,
		Telemetry: o.Telemetry,
	}
	if o.Remote != "" {
		client := service.Dial(o.Remote)
		client.Deadline = o.RemoteDeadline
		ro.ExecuteInterruptible = client.ExecuteInterruptible
	}
	return &Suite{opts: o, r: runner.New(ro)}
}

// Opts returns the effective options.
func (s *Suite) Opts() Options { return s.opts }

// Runner exposes the suite's sweep engine (for progress and cache stats).
func (s *Suite) Runner() *runner.Runner { return s.r }

// sysVariant maps variant names to configuration mutations.
func sysVariant(name string, cfg *machine.Config) error {
	return runner.ApplyVariant(name, cfg)
}

// request expands a suite run key into a full runner request.
func (s *Suite) request(key runKey) runner.Request {
	return runner.Request{
		Workload: key.workload,
		Policy:   key.policy,
		Input:    key.input,
		Threads:  key.threads,
		Seed:     s.opts.Seed,
		Scale:    s.opts.Scale,
		Variant:  key.sysVariant,
	}
}

// run executes (or recalls) one simulation.
func (s *Suite) run(key runKey) (*machine.Result, error) {
	out, err := s.r.Run(s.request(key))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return out.Result, nil
}

// prefetch submits a set of keys so they simulate concurrently on the
// runner's pool; the serial collection loops that follow then read every
// result from the cache in deterministic order.
func (s *Suite) prefetch(keys []runKey) error {
	tasks := make([]*runner.Task, len(keys))
	for i, k := range keys {
		tasks[i] = s.r.Submit(s.request(k))
	}
	for _, t := range tasks {
		if _, err := t.Wait(); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

// submit enqueues pre-built requests and waits for all of them.
func (s *Suite) submit(reqs []runner.Request) error {
	tasks := make([]*runner.Task, len(reqs))
	for i, q := range reqs {
		tasks[i] = s.r.Submit(q)
	}
	for _, t := range tasks {
		if _, err := t.Wait(); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

// classSets returns the workload names of the LMH, MH and H sets.
func classSets() (lmh, mh, h []string) {
	for _, spec := range workload.All() {
		lmh = append(lmh, spec.Name)
		if spec.Class == workload.Medium || spec.Class == workload.High {
			mh = append(mh, spec.Name)
		}
		if spec.Class == workload.High {
			h = append(h, spec.Name)
		}
	}
	return lmh, mh, h
}

// geomeanOver computes the geometric-mean speedup of a policy over the
// baseline across the given workloads, from cached results.
func (s *Suite) geomeanOver(names []string, speedups map[string]float64) float64 {
	xs := make([]float64, 0, len(names))
	for _, n := range names {
		if v, ok := speedups[n]; ok {
			xs = append(xs, v)
		}
	}
	return stats.Geomean(xs)
}

// Experiment describes one runnable experiment for the CLI.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Suite) (*stats.Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: near vs far AMO throughput", (*Suite).Figure1},
		{"table1", "Table I: static AMO policies", (*Suite).TableI},
		{"table2", "Table II: system configuration", (*Suite).TableII},
		{"table3", "Table III: benchmark characteristics", (*Suite).TableIII},
		{"fig6", "Figure 6: AMOs per kilo-instruction", (*Suite).Figure6},
		{"fig7", "Figure 7: static policy speed-ups", (*Suite).Figure7},
		{"fig8", "Figure 8: DynAMO speed-ups", (*Suite).Figure8},
		{"fig9", "Figure 9: input sensitivity", (*Suite).Figure9},
		{"energy", "Section VI-E: dynamic energy", (*Suite).Energy},
		{"fig10", "Figure 10: AMT sizing", (*Suite).Figure10},
		{"hwcost", "Section VI-G: hardware cost", (*Suite).HardwareCost},
		{"fig11", "Figure 11: system design space", (*Suite).Figure11},
		{"table4", "Table IV: synchronization alternatives", (*Suite).TableIV},
		{"ablation", "Ablations: AMO buffer, atomic queue, HN pipeline, prefetcher", (*Suite).Ablations},
		{"dse", "Section IV: static-policy design space (8 practical candidates)", (*Suite).DesignSpace},
		{"latency", "Latency breakdown: per-class and per-phase transaction latency", (*Suite).LatencyBreakdown},
		{"profile", "Contention profile: hottest AMO cache lines with site attribution", (*Suite).ContentionProfile},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
