// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns its data as a formatted
// table plus machine-readable rows; the dynamo-experiments command prints
// them, and EXPERIMENTS.md records paper-vs-measured values.
//
// Independent simulations run concurrently on host cores; each simulation
// is itself single-threaded and deterministic, so results are reproducible
// regardless of the worker count.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/sim"
	"dynamo/internal/stats"
	"dynamo/internal/workload"
)

// Options configures a suite run.
type Options struct {
	// Threads is the worker-thread count per simulation (default 32, the
	// paper's core count).
	Threads int
	// Seed drives workload generation (default 1).
	Seed int64
	// Scale multiplies workload sizes (default 1.0). Benchmarks use small
	// scales.
	Scale float64
	// Workers bounds concurrent simulations (default: host cores).
	Workers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) fill() Options {
	if o.Threads == 0 {
		o.Threads = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Suite runs experiments with memoized simulation results, so Best Static
// bars and shared baselines are computed once.
type Suite struct {
	opts  Options
	mu    sync.Mutex
	cache map[runKey]*runOutcome
}

type runKey struct {
	workload string
	policy   string
	input    string
	threads  int
	// sysVariant names a non-default system configuration (Fig. 10/11).
	sysVariant string
}

type runOutcome struct {
	res *machine.Result
	err error
}

// NewSuite builds a suite.
func NewSuite(o Options) *Suite {
	return &Suite{opts: o.fill(), cache: make(map[runKey]*runOutcome)}
}

// Opts returns the effective options.
func (s *Suite) Opts() Options { return s.opts }

func (s *Suite) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, format+"\n", args...)
	}
}

// sysVariants maps variant names to configuration mutations.
func sysVariant(name string, cfg *machine.Config) error {
	switch name {
	case "", "base":
	case "noc-1c":
		cfg.Chi.Mesh.RouteLatency = 0
		cfg.Chi.Mesh.LinkLatency = 1
	case "noc-3c":
		cfg.Chi.Mesh.RouteLatency = 2
		cfg.Chi.Mesh.LinkLatency = 1
	case "half-lat":
		cfg.Chi.Mem.Latency /= 2
	case "double-lat":
		cfg.Chi.Mem.Latency *= 2
	default:
		var n int
		switch {
		case scanInt(name, "amobuf-%d", &n):
			cfg.Chi.AMOBufEntries = n
		case scanInt(name, "maxatomics-%d", &n):
			cfg.CPU.MaxAtomics = n
		case scanInt(name, "occupancy-%d", &n):
			cfg.Chi.FarAMOOccupancy = sim.Tick(n)
		case scanInt(name, "prefetch-%d", &n):
			cfg.Chi.PrefetchDegree = n
		default:
			// AMT variants: amt-e<entries>-w<ways>-c<counter>.
			var e, w, c int
			if _, err := fmt.Sscanf(name, "amt-e%d-w%d-c%d", &e, &w, &c); err != nil {
				return fmt.Errorf("experiments: unknown system variant %q", name)
			}
			cfg.AMT = core.AMTConfig{Entries: e, Ways: w, CounterMax: c}
		}
	}
	return nil
}

// scanInt parses a single-integer variant name.
func scanInt(name, format string, out *int) bool {
	_, err := fmt.Sscanf(name, format, out)
	return err == nil
}

// run executes (or recalls) one simulation.
func (s *Suite) run(key runKey) (*machine.Result, error) {
	if key.sysVariant == "base" {
		key.sysVariant = "" // the base system shares cache entries
	}
	s.mu.Lock()
	if out, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return out.res, out.err
	}
	s.mu.Unlock()

	res, err := s.execute(key)

	s.mu.Lock()
	s.cache[key] = &runOutcome{res: res, err: err}
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s(%s): %w", key.workload, key.policy, key.input, err)
	}
	return res, nil
}

func (s *Suite) execute(key runKey) (*machine.Result, error) {
	cfg := machine.DefaultConfig()
	cfg.Policy = key.policy
	if err := sysVariant(key.sysVariant, &cfg); err != nil {
		return nil, err
	}
	spec, err := workload.Get(key.workload)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(workload.Params{
		Threads: key.threads,
		Seed:    s.opts.Seed,
		Scale:   s.opts.Scale,
		Input:   key.input,
	})
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	res, err := m.Run(inst.Programs)
	if err != nil {
		return nil, err
	}
	if err := inst.Validate(m.Sys.Data); err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}
	s.logf("  ran %-12s %-16s %-8s variant=%-14s %10d cycles", key.workload, key.policy, key.input, key.sysVariant, res.Cycles)
	return res, nil
}

// parallel runs jobs on the worker pool, returning the first error.
func (s *Suite) parallel(jobs []func() error) error {
	sem := make(chan struct{}, s.opts.Workers)
	errc := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, job := range jobs {
		job := job
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errc <- job()
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			return err
		}
	}
	return nil
}

// prefetch warms the cache for a set of keys in parallel.
func (s *Suite) prefetch(keys []runKey) error {
	jobs := make([]func() error, len(keys))
	for i, k := range keys {
		k := k
		jobs[i] = func() error { _, err := s.run(k); return err }
	}
	return s.parallel(jobs)
}

// classSets returns the workload names of the LMH, MH and H sets.
func classSets() (lmh, mh, h []string) {
	for _, spec := range workload.All() {
		lmh = append(lmh, spec.Name)
		if spec.Class == workload.Medium || spec.Class == workload.High {
			mh = append(mh, spec.Name)
		}
		if spec.Class == workload.High {
			h = append(h, spec.Name)
		}
	}
	return lmh, mh, h
}

// geomeanOver computes the geometric-mean speedup of a policy over the
// baseline across the given workloads, from cached results.
func (s *Suite) geomeanOver(names []string, speedups map[string]float64) float64 {
	xs := make([]float64, 0, len(names))
	for _, n := range names {
		if v, ok := speedups[n]; ok {
			xs = append(xs, v)
		}
	}
	return stats.Geomean(xs)
}

// Experiment describes one runnable experiment for the CLI.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Suite) (*stats.Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: near vs far AMO throughput", (*Suite).Figure1},
		{"table1", "Table I: static AMO policies", (*Suite).TableI},
		{"table2", "Table II: system configuration", (*Suite).TableII},
		{"table3", "Table III: benchmark characteristics", (*Suite).TableIII},
		{"fig6", "Figure 6: AMOs per kilo-instruction", (*Suite).Figure6},
		{"fig7", "Figure 7: static policy speed-ups", (*Suite).Figure7},
		{"fig8", "Figure 8: DynAMO speed-ups", (*Suite).Figure8},
		{"fig9", "Figure 9: input sensitivity", (*Suite).Figure9},
		{"energy", "Section VI-E: dynamic energy", (*Suite).Energy},
		{"fig10", "Figure 10: AMT sizing", (*Suite).Figure10},
		{"hwcost", "Section VI-G: hardware cost", (*Suite).HardwareCost},
		{"fig11", "Figure 11: system design space", (*Suite).Figure11},
		{"table4", "Table IV: synchronization alternatives", (*Suite).TableIV},
		{"ablation", "Ablations: AMO buffer, atomic queue, HN pipeline, prefetcher", (*Suite).Ablations},
		{"dse", "Section IV: static-policy design space (8 practical candidates)", (*Suite).DesignSpace},
		{"latency", "Latency breakdown: per-class and per-phase transaction latency", (*Suite).LatencyBreakdown},
		{"profile", "Contention profile: hottest AMO cache lines with site attribution", (*Suite).ContentionProfile},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
