package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFile(eps float64) *File {
	key := Key{Workload: "histogram", Policy: "dynamo-reuse-pn", Threads: 4, Scale: 0.1}
	wall := uint64(float64(1_000_000) / eps * 1e9)
	trial := Trial{WallNS: wall, Events: 1_000_000, AllocObjects: 3_200_000}
	return &File{
		PR:    6,
		Host:  Host{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, CPUs: 4},
		Cells: []Cell{Summarize(key, 1_000_000, 2_000_000, []Trial{trial, trial, trial})},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile(2e6)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.PR != 6 || back.Host != f.Host {
		t.Fatalf("round-trip header mismatch: %+v", back)
	}
	if len(back.Cells) != 1 || back.Cells[0].Key != f.Cells[0].Key {
		t.Fatalf("round-trip cells mismatch: %+v", back.Cells)
	}
	if got, want := back.Cells[0].EventsPerSec, f.Cells[0].EventsPerSec; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("round-trip events/sec %v, want %v", got, want)
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	f := sampleFile(1e6)
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.PR != f.PR {
		t.Fatalf("PR %d, want %d", back.PR, f.PR)
	}
}

func TestReadRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"wrong schema": `{"schema": 99, "cells": [{"workload": "x", "trials": 1}]}`,
		"no cells":     `{"schema": 1, "cells": []}`,
		"bad cell":     `{"schema": 1, "cells": [{"workload": "", "trials": 0}]}`,
	}
	for name, body := range cases {
		if _, err := Read(strings.NewReader(body)); err == nil {
			t.Errorf("%s: Read accepted %q", name, body)
		}
	}
}

func TestSummarizeMedianAndSpread(t *testing.T) {
	key := Key{Workload: "tc", Policy: "all-near", Threads: 4, Scale: 0.1}
	// events/sec of 1e6 events over 1s, 2s, 4s: 1e6, 5e5, 2.5e5 — median 5e5.
	trials := []Trial{
		{WallNS: 1e9, Events: 1e6, AllocObjects: 2e6},
		{WallNS: 2e9, Events: 1e6, AllocObjects: 2e6},
		{WallNS: 4e9, Events: 1e6, AllocObjects: 2e6},
	}
	c := Summarize(key, 1e6, 5e6, trials)
	if c.Trials != 3 || c.Events != 1e6 || c.Cycles != 5e6 {
		t.Fatalf("summary header: %+v", c)
	}
	if math.Abs(c.EventsPerSec-5e5) > 1 {
		t.Fatalf("median events/sec = %v, want 5e5", c.EventsPerSec)
	}
	if math.Abs(c.NSPerEvent-2000) > 0.01 {
		t.Fatalf("median ns/event = %v, want 2000", c.NSPerEvent)
	}
	if math.Abs(c.AllocsPerEvent-2) > 0.001 {
		t.Fatalf("median allocs/event = %v, want 2", c.AllocsPerEvent)
	}
	// spread = (1e6 - 2.5e5) / 5e5 = 1.5
	if math.Abs(c.Spread-1.5) > 0.001 {
		t.Fatalf("spread = %v, want 1.5", c.Spread)
	}
	empty := Summarize(key, 0, 0, nil)
	if empty.Trials != 0 || empty.EventsPerSec != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
}

func TestCompareTolerances(t *testing.T) {
	old := sampleFile(2e6)
	for _, tc := range []struct {
		name string
		eps  float64
		tol  float64
		ok   bool
	}{
		{"identical", 2e6, 0.1, true},
		{"small drop within tolerance", 1.9e6, 0.1, true},
		{"drop beyond tolerance", 1.7e6, 0.1, false},
		{"huge improvement passes (one-sided)", 9e6, 0.1, true},
		{"tight tolerance catches small drop", 1.9e6, 0.01, false},
	} {
		c := Compare(old, sampleFile(tc.eps), tc.tol)
		if c.Matched != 1 {
			t.Fatalf("%s: matched %d cells, want 1", tc.name, c.Matched)
		}
		if c.Ok() != tc.ok {
			t.Errorf("%s: Ok() = %v, want %v (regressions: %v)", tc.name, c.Ok(), tc.ok, c.Regressions)
		}
	}
}

func TestCompareRegressionDetail(t *testing.T) {
	old, new := sampleFile(2e6), sampleFile(1e6)
	c := Compare(old, new, 0.25)
	if len(c.Regressions) != 1 {
		t.Fatalf("regressions: %v", c.Regressions)
	}
	r := c.Regressions[0]
	if math.Abs(r.Drop-0.5) > 0.001 {
		t.Fatalf("drop = %v, want 0.5", r.Drop)
	}
	if !strings.Contains(r.String(), "histogram") {
		t.Fatalf("regression string %q lacks the cell key", r.String())
	}
}

func TestCompareMismatchedCellsWarn(t *testing.T) {
	old, new := sampleFile(2e6), sampleFile(2e6)
	extra := old.Cells[0]
	extra.Workload = "spmv"
	old.Cells = append(old.Cells, extra)
	missing := new.Cells[0]
	missing.Workload = "tc"
	new.Cells = append(new.Cells, missing)
	c := Compare(old, new, 0.1)
	if c.Matched != 1 {
		t.Fatalf("matched %d, want 1", c.Matched)
	}
	if len(c.Warnings) != 2 {
		t.Fatalf("warnings: %v", c.Warnings)
	}
	if !c.Ok() {
		t.Fatal("unmatched cells must warn, not fail")
	}
}

func TestCompareHostMismatchWarns(t *testing.T) {
	old, new := sampleFile(2e6), sampleFile(2e6)
	new.Host.GoVersion = "go1.99.0"
	c := Compare(old, new, 0.1)
	if len(c.Warnings) != 1 || !strings.Contains(c.Warnings[0], "fingerprints differ") {
		t.Fatalf("warnings: %v", c.Warnings)
	}
	if !c.Ok() {
		t.Fatal("host mismatch must warn, not fail")
	}
}

func TestCompareNoMatchesNotOk(t *testing.T) {
	old, new := sampleFile(2e6), sampleFile(2e6)
	new.Cells[0].Scale = 0.05 // a -quick file must never gate a full one
	c := Compare(old, new, 0.1)
	if c.Matched != 0 || c.Ok() {
		t.Fatalf("scale-mismatched files compared: matched=%d ok=%v", c.Matched, c.Ok())
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Workload: "spmv", Policy: "all-near", Threads: 8, Scale: 0.5, Obs: true, Check: true}
	s := k.String()
	for _, frag := range []string{"spmv", "all-near", "t8", "s0.5", "+obs", "+check"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Key.String() = %q missing %q", s, frag)
		}
	}
}
