// Package bench defines the schema, summarization and comparison logic of
// the pinned host-performance benchmark matrix (BENCH_<pr>.json): the
// canonical per-PR record of how fast the simulator runs on a given host.
//
// The package is pure — it runs no simulations. cmd/dynamo-bench executes
// the matrix through the public dynamo API and feeds raw trial
// measurements in here; keeping the schema and the regression-gate logic
// free of simulation lets tests cover round-trips and tolerance edges
// without ever building a machine.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"dynamo/internal/perf"
)

// Schema is the file format version. Readers reject other versions: a
// perf trajectory spanning schema changes must be re-measured, never
// silently reinterpreted.
const Schema = 1

// Host fingerprints the machine a benchmark ran on. Numbers from
// different fingerprints are not comparable; Compare warns but does not
// fail when fingerprints differ, since a tolerance wide enough for CI
// hosts absorbs same-generation hardware spread.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	// CPUModel is the kernel-reported processor model, best-effort
	// (empty when the platform exposes none).
	CPUModel string `json:"cpu_model,omitempty"`
}

// Key identifies one cell of the pinned matrix. Every field participates
// in matching between files: a cell measured at a different scale or
// thread count never compares against this one.
type Key struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	Threads  int     `json:"threads"`
	Scale    float64 `json:"scale"`
	// Obs and Check select the probe-bus and sanitizer dimensions of the
	// matrix; both off is the cell later optimization PRs are judged by.
	Obs   bool `json:"obs"`
	Check bool `json:"check"`
}

// String renders the key compactly for logs and regression reports.
func (k Key) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s t%d s%g", k.Workload, k.Policy, k.Threads, k.Scale)
	if k.Obs {
		b.WriteString(" +obs")
	}
	if k.Check {
		b.WriteString(" +check")
	}
	return b.String()
}

// Trial is one measured run of a cell: wall-clock, kernel events and heap
// objects allocated, as read around a single simulation.
type Trial struct {
	WallNS       uint64 `json:"wall_ns"`
	Events       uint64 `json:"events"`
	AllocObjects uint64 `json:"alloc_objects"`
}

// EventsPerSec derives the trial's host throughput.
func (t Trial) EventsPerSec() float64 {
	if t.WallNS == 0 {
		return 0
	}
	return float64(t.Events) / (float64(t.WallNS) / 1e9)
}

// Cell is one matrix cell's summarized measurement: the median and
// relative spread over its trials. Events and Cycles are simulated
// quantities — deterministic, identical across trials — while the host
// metrics are medians, robust to one slow trial on a noisy machine.
type Cell struct {
	Key
	Trials int `json:"trials"`
	// Events is the deterministic kernel-event count of one run; Cycles
	// the simulated cycle count.
	Events uint64 `json:"events"`
	Cycles uint64 `json:"cycles"`
	// EventsPerSec, NSPerEvent and AllocsPerEvent are medians over trials.
	EventsPerSec   float64 `json:"events_per_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Spread is the relative spread of per-trial events/sec:
	// (max-min)/median. A large spread means the host was noisy and the
	// medians deserve suspicion.
	Spread float64 `json:"spread"`
	// Attribution is the self-profiler's per-subsystem wall-clock shares,
	// captured from one additional profiled run (base cells only).
	Attribution []perf.KindStat `json:"attribution,omitempty"`
	// ProfilerOverhead is ns/event of the profiled run divided by the
	// unprofiled median — the measured cost of the self-profiler itself.
	ProfilerOverhead float64 `json:"profiler_overhead,omitempty"`
	// RawTrials preserves the individual measurements behind the medians.
	RawTrials []Trial `json:"raw_trials,omitempty"`
}

// File is one BENCH_<pr>.json: the full matrix measured on one host at
// one point of the repository's history.
type File struct {
	Schema int `json:"schema"`
	// PR is the trajectory index the measurement belongs to.
	PR   int  `json:"pr"`
	Host Host `json:"host"`
	// Cells is the measured matrix, sorted by key for stable diffs.
	Cells []Cell `json:"cells"`
}

// median returns the middle value of xs (mean of the middle two for even
// lengths). It sorts a copy; empty input returns 0.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Summarize reduces a cell's trials to medians and spread. events and
// cycles are the deterministic simulated quantities of the cell's runs.
func Summarize(key Key, events, cycles uint64, trials []Trial) Cell {
	c := Cell{Key: key, Trials: len(trials), Events: events, Cycles: cycles}
	if len(trials) == 0 {
		return c
	}
	var eps, nspe, ape []float64
	for _, t := range trials {
		eps = append(eps, t.EventsPerSec())
		if t.Events > 0 {
			nspe = append(nspe, float64(t.WallNS)/float64(t.Events))
			ape = append(ape, float64(t.AllocObjects)/float64(t.Events))
		}
	}
	c.EventsPerSec = median(eps)
	c.NSPerEvent = median(nspe)
	c.AllocsPerEvent = median(ape)
	if c.EventsPerSec > 0 {
		min, max := eps[0], eps[0]
		for _, v := range eps[1:] {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		c.Spread = (max - min) / c.EventsPerSec
	}
	c.RawTrials = trials
	return c
}

// sortCells orders the matrix canonically so serialized files diff
// cleanly between PRs.
func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i].Key, cells[j].Key
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Threads != b.Threads {
			return a.Threads < b.Threads
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		if a.Obs != b.Obs {
			return !a.Obs
		}
		return !a.Check
	})
}

// Write serializes the file, cells in canonical order.
func (f *File) Write(w io.Writer) error {
	f.Schema = Schema
	sortCells(f.Cells)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the file to path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Read parses and validates a benchmark file: malformed JSON, a missing
// matrix or a schema mismatch all error.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("bench: schema %d, want %d (re-measure, do not reinterpret)", f.Schema, Schema)
	}
	if len(f.Cells) == 0 {
		return nil, fmt.Errorf("bench: no cells")
	}
	for _, c := range f.Cells {
		if c.Workload == "" || c.Trials <= 0 {
			return nil, fmt.Errorf("bench: malformed cell %q", c.Key)
		}
	}
	return &f, nil
}

// ReadFile reads and validates the benchmark file at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Read(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Regression is one cell whose throughput fell beyond tolerance between
// two files.
type Regression struct {
	Key  Key
	Old  float64 // old median events/sec
	New  float64
	Drop float64 // relative drop, e.g. 0.3 = 30% slower
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.3g -> %.3g events/s (-%.1f%%)", r.Key, r.Old, r.New, 100*r.Drop)
}

// Comparison is the outcome of matching two benchmark files cell by cell.
type Comparison struct {
	// Matched counts cells present in both files.
	Matched int
	// Regressions lists matched cells whose median events/sec dropped by
	// more than the tolerance, worst first.
	Regressions []Regression
	// Warnings notes non-fatal anomalies: differing host fingerprints,
	// cells present on only one side.
	Warnings []string
}

// Ok reports whether the comparison found matched cells and no
// regression.
func (c *Comparison) Ok() bool { return c.Matched > 0 && len(c.Regressions) == 0 }

// Compare matches new against old cell by key and flags every cell whose
// median events/sec dropped by more than tol (0.1 = 10% slower fails).
// Improvements never flag: the gate is one-sided by design, since a
// faster simulator is the point.
func Compare(old, new *File, tol float64) *Comparison {
	c := &Comparison{}
	if old.Host != new.Host {
		c.Warnings = append(c.Warnings,
			fmt.Sprintf("host fingerprints differ (%+v vs %+v): numbers may not be comparable", old.Host, new.Host))
	}
	oldCells := make(map[Key]Cell, len(old.Cells))
	for _, cell := range old.Cells {
		oldCells[cell.Key] = cell
	}
	for _, nc := range new.Cells {
		oc, ok := oldCells[nc.Key]
		if !ok {
			c.Warnings = append(c.Warnings, fmt.Sprintf("cell %s only in new file", nc.Key))
			continue
		}
		delete(oldCells, nc.Key)
		c.Matched++
		if oc.EventsPerSec <= 0 {
			continue
		}
		drop := (oc.EventsPerSec - nc.EventsPerSec) / oc.EventsPerSec
		if drop > tol {
			c.Regressions = append(c.Regressions, Regression{
				Key: nc.Key, Old: oc.EventsPerSec, New: nc.EventsPerSec, Drop: drop,
			})
		}
	}
	for key := range oldCells {
		c.Warnings = append(c.Warnings, fmt.Sprintf("cell %s only in old file", key))
	}
	sort.Slice(c.Regressions, func(i, j int) bool {
		if c.Regressions[i].Drop != c.Regressions[j].Drop {
			return c.Regressions[i].Drop > c.Regressions[j].Drop
		}
		return c.Regressions[i].Key.String() < c.Regressions[j].Key.String()
	})
	sort.Strings(c.Warnings)
	return c
}
