// Package profile builds run-level performance profiles on top of the obs
// probe bus: a bounded per-cacheline contention profiler (space-saving
// top-K) and an interval telemetry recorder that turns cumulative counters
// into a time-series of per-period records.
//
// Both collectors are fed from simulation events, which the engine runs
// single-threaded in deterministic order, so profiles and interval series
// are byte-identical across runs of the same seed and configuration.
package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"dynamo/internal/memory"
	"dynamo/internal/obs"
	"dynamo/internal/sim"
	"dynamo/internal/stats"
)

// entry is the profiler's accumulator for one tracked cache line. AMOs is
// the space-saving key count; Err bounds its overestimation (an entry that
// inherited a slot starts from the evicted minimum).
type entry struct {
	line     memory.Addr
	amos     uint64
	err      uint64
	near     uint64
	far      uint64
	snoops   uint64
	sharers  uint64
	forwards uint64
	hnOps    uint64
	hnTicks  uint64
}

// reset rebases the entry on a new line after a space-saving replacement,
// keeping the inherited count and recording its error bound.
func (e *entry) reset(line memory.Addr, inherited uint64) {
	*e = entry{line: line, amos: inherited, err: inherited}
}

// Profiler is a bounded top-K contention profiler keyed by cache-line
// address. It implements obs.ContentionObserver. Admission follows the
// space-saving algorithm on AMO events: a line not yet tracked replaces the
// current minimum-count entry and inherits its count, so the K hottest
// lines are retained within a provable error bound regardless of workload
// footprint. Snoop and occupancy events only accumulate on already-tracked
// lines, keeping memory fixed at K entries.
type Profiler struct {
	k       int
	index   map[memory.Addr]int
	entries []entry
	// totalAMOs counts every observed AMO, tracked line or not, so reports
	// can show the table's coverage.
	totalAMOs uint64
}

// DefaultTopK is the table size used when none is given.
const DefaultTopK = 32

// NewProfiler builds a profiler tracking the k hottest lines (DefaultTopK
// if k <= 0).
func NewProfiler(k int) *Profiler {
	if k <= 0 {
		k = DefaultTopK
	}
	return &Profiler{k: k, index: make(map[memory.Addr]int, k)}
}

// K returns the table bound.
func (p *Profiler) K() int { return p.k }

// track returns the entry index for line, admitting it via space-saving
// replacement if necessary. ok is false when the line is not tracked and
// admit is false.
func (p *Profiler) track(line memory.Addr, admit bool) (int, bool) {
	if i, ok := p.index[line]; ok {
		return i, true
	}
	if !admit {
		return 0, false
	}
	if len(p.entries) < p.k {
		p.entries = append(p.entries, entry{line: line})
		p.index[line] = len(p.entries) - 1
		return len(p.entries) - 1, true
	}
	// Replace the minimum-count entry. The scan is deterministic (first
	// minimum in slice order); no map iteration anywhere.
	min := 0
	for i := 1; i < len(p.entries); i++ {
		if p.entries[i].amos < p.entries[min].amos {
			min = i
		}
	}
	delete(p.index, p.entries[min].line)
	p.entries[min].reset(line, p.entries[min].amos)
	p.index[line] = min
	return min, true
}

// ObserveAMO implements obs.ContentionObserver.
func (p *Profiler) ObserveAMO(line memory.Addr, far bool) {
	p.totalAMOs++
	i, _ := p.track(line, true)
	e := &p.entries[i]
	e.amos++
	if far {
		e.far++
	} else {
		e.near++
	}
}

// ObserveSnoop implements obs.ContentionObserver.
func (p *Profiler) ObserveSnoop(line memory.Addr, sharers int) {
	if i, ok := p.track(line, false); ok {
		p.entries[i].snoops++
		p.entries[i].sharers += uint64(sharers)
	}
}

// ObserveSnoopForward implements obs.ContentionObserver.
func (p *Profiler) ObserveSnoopForward(line memory.Addr) {
	if i, ok := p.track(line, false); ok {
		p.entries[i].forwards++
	}
}

// ObserveHNOccupancy implements obs.ContentionObserver.
func (p *Profiler) ObserveHNOccupancy(line memory.Addr, dur sim.Tick) {
	if i, ok := p.track(line, false); ok {
		p.entries[i].hnOps++
		p.entries[i].hnTicks += uint64(dur)
	}
}

// HotLine is one row of the contention report.
type HotLine struct {
	// Line is the cache-line address.
	Line memory.Addr `json:"line"`
	// Site names the workload-level structure the line belongs to, with
	// Offset its byte offset inside that region. Empty when unattributed.
	Site   string `json:"site,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	// AMOs is the space-saving count; Err bounds its overestimation
	// (true count is in [AMOs-Err, AMOs]).
	AMOs uint64 `json:"amos"`
	Err  uint64 `json:"err,omitempty"`
	// Near/Far split the AMOs observed since the line was admitted.
	Near uint64 `json:"near"`
	Far  uint64 `json:"far"`
	// Snoops counts snoop fan-outs; MeanSharers is targets per fan-out.
	Snoops      uint64  `json:"snoops"`
	MeanSharers float64 `json:"mean_sharers"`
	// Forwards counts dirty-data forwards out of snooped caches.
	Forwards uint64 `json:"forwards"`
	// MeanHNTicks is the mean HN ALU time (queue + occupancy) per far AMO.
	MeanHNTicks float64 `json:"mean_hn_ticks"`
}

// HotReport is the deterministic digest of the profiler: the tracked lines
// sorted by AMO count descending (line address ascending on ties).
type HotReport struct {
	// K is the table bound; TotalAMOs counts every AMO in the run, so
	// coverage = sum(Lines[].AMOs) / TotalAMOs (an overestimate by Err).
	K         int       `json:"k"`
	TotalAMOs uint64    `json:"total_amos"`
	Lines     []HotLine `json:"lines"`
}

// Report digests the table. resolve maps a line address to its workload
// site; pass (*obs.Bus).SiteOf, or nil to skip attribution.
func (p *Profiler) Report(resolve func(memory.Addr) (obs.Site, bool)) *HotReport {
	r := &HotReport{K: p.k, TotalAMOs: p.totalAMOs}
	for _, e := range p.entries {
		hl := HotLine{
			Line: e.line, AMOs: e.amos, Err: e.err,
			Near: e.near, Far: e.far,
			Snoops: e.snoops, Forwards: e.forwards,
		}
		if e.snoops > 0 {
			hl.MeanSharers = float64(e.sharers) / float64(e.snoops)
		}
		if e.hnOps > 0 {
			hl.MeanHNTicks = float64(e.hnTicks) / float64(e.hnOps)
		}
		if resolve != nil {
			if s, ok := resolve(e.line); ok {
				hl.Site = s.Name
				hl.Offset = int64(e.line - s.Base)
			}
		}
		r.Lines = append(r.Lines, hl)
	}
	sortHotLines(r.Lines)
	return r
}

// sortHotLines orders rows by AMO count descending, line ascending on ties
// (insertion sort: K is small and the order must be fully deterministic).
func sortHotLines(ls []HotLine) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0; j-- {
			a, b := &ls[j-1], &ls[j]
			if a.AMOs > b.AMOs || (a.AMOs == b.AMOs && a.Line <= b.Line) {
				break
			}
			ls[j-1], ls[j] = ls[j], ls[j-1]
		}
	}
}

// Table renders the report as an aligned text table.
func (r *HotReport) Table() *stats.Table {
	t := &stats.Table{Header: []string{
		"line", "site", "amos", "err", "near", "far", "snoops", "sharers", "fwd", "hn-ticks",
	}}
	for _, l := range r.Lines {
		site := l.Site
		if site != "" {
			site = fmt.Sprintf("%s+%d", l.Site, l.Offset)
		}
		t.AddRow(fmt.Sprintf("%#x", uint64(l.Line)), site,
			fmt.Sprint(l.AMOs), fmt.Sprint(l.Err),
			fmt.Sprint(l.Near), fmt.Sprint(l.Far),
			fmt.Sprint(l.Snoops), stats.F(l.MeanSharers),
			fmt.Sprint(l.Forwards), stats.F(l.MeanHNTicks))
	}
	return t
}

// WriteJSON writes the report as indented JSON.
func (r *HotReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
