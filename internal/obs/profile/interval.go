package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"dynamo/internal/obs"
	"dynamo/internal/sim"
	"dynamo/internal/stats"
)

// Sample is a point-in-time reading of cumulative machine counters. The
// machine builds one per sampling period; the recorder differences
// consecutive samples into interval records. Links and LineBytes carry the
// topology constants needed to derive utilisation and bandwidth.
type Sample struct {
	// Instructions is the total committed instruction count across cores.
	Instructions uint64
	// FlitHops is the cumulative NoC link flit-cycle count.
	FlitHops uint64
	// HBMReads/HBMWrites are cumulative line transfers per direction.
	HBMReads  uint64
	HBMWrites uint64
	// Links is the NoC's unidirectional link count (0 disables link
	// utilisation).
	Links int
	// LineBytes is the bytes moved per HBM access (0 disables bandwidth).
	LineBytes int
}

// ClassDelta is the per-transaction-class activity of one interval.
type ClassDelta struct {
	Name string `json:"name"`
	// Count is the number of transactions of the class that *ended* in the
	// interval; Cycles their summed end-to-end latency; Mean the average.
	Count  uint64  `json:"count"`
	Cycles uint64  `json:"cycles"`
	Mean   float64 `json:"mean"`
}

// Record is one sampling interval [Start, End).
type Record struct {
	Start sim.Tick `json:"start"`
	End   sim.Tick `json:"end"`
	// Instructions committed in the interval.
	Instructions uint64 `json:"instructions"`
	// Classes holds one delta per transaction class, in class declaration
	// order (always the full set, so CSV columns line up).
	Classes []ClassDelta `json:"classes"`
	// FlitHops is the link flit-cycles consumed in the interval;
	// LinkUtilization normalises by links x interval length.
	FlitHops        uint64  `json:"flit_hops"`
	LinkUtilization float64 `json:"link_utilization"`
	// HBM activity: line transfers per direction and bytes per cycle.
	HBMReads     uint64  `json:"hbm_reads"`
	HBMWrites    uint64  `json:"hbm_writes"`
	HBMBandwidth float64 `json:"hbm_bandwidth"`
	// AMT predictor activity (zero under static policies).
	AMTHits    uint64  `json:"amt_hits"`
	AMTMisses  uint64  `json:"amt_misses"`
	AMTHitRate float64 `json:"amt_hit_rate"`
	// Counters holds the interval delta of every free-form bus counter,
	// sorted by name.
	Counters []stats.Counter `json:"counters,omitempty"`
}

// DefaultIntervalCap bounds the ring when no capacity is given.
const DefaultIntervalCap = 4096

// Recorder turns periodic samples into a bounded ring of interval records.
// When the ring is full the oldest record is dropped (and counted), so
// memory stays fixed however long the run.
type Recorder struct {
	period  sim.Tick
	cap     int
	records []Record
	dropped uint64
	last    sim.Tick
	prev    Sample

	classes      []obs.Class
	prevCount    []uint64
	prevSum      []uint64
	prevCounters map[string]uint64
}

// NewRecorder builds a recorder sampling every period ticks, keeping at
// most capacity records (DefaultIntervalCap if <= 0).
func NewRecorder(period sim.Tick, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultIntervalCap
	}
	classes := obs.AllClasses()
	return &Recorder{
		period:       period,
		cap:          capacity,
		classes:      classes,
		prevCount:    make([]uint64, len(classes)),
		prevSum:      make([]uint64, len(classes)),
		prevCounters: make(map[string]uint64),
	}
}

// Period returns the sampling period.
func (r *Recorder) Period() sim.Tick { return r.period }

// Len returns the number of retained records.
func (r *Recorder) Len() int { return len(r.records) }

// Dropped returns how many records were evicted from a full ring.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Observe closes the interval [last sample, now) from the cumulative
// counter sample s and the bus histograms h (nil h skips class latency and
// counter deltas). Zero-length intervals are ignored, so the machine can
// unconditionally take a final sample at drain time.
func (r *Recorder) Observe(now sim.Tick, s Sample, h *obs.Histograms) {
	if now <= r.last {
		return
	}
	rec := Record{
		Start:        r.last,
		End:          now,
		Instructions: s.Instructions - r.prev.Instructions,
		FlitHops:     s.FlitHops - r.prev.FlitHops,
		HBMReads:     s.HBMReads - r.prev.HBMReads,
		HBMWrites:    s.HBMWrites - r.prev.HBMWrites,
	}
	dur := float64(now - r.last)
	if s.Links > 0 && dur > 0 {
		rec.LinkUtilization = float64(rec.FlitHops) / (float64(s.Links) * dur)
	}
	if s.LineBytes > 0 && dur > 0 {
		rec.HBMBandwidth = float64(rec.HBMReads+rec.HBMWrites) * float64(s.LineBytes) / dur
	}
	if h != nil {
		for i, c := range r.classes {
			ch := h.Class(c)
			d := ClassDelta{
				Name:   c.String(),
				Count:  ch.Count() - r.prevCount[i],
				Cycles: ch.Sum() - r.prevSum[i],
			}
			if d.Count > 0 {
				d.Mean = float64(d.Cycles) / float64(d.Count)
			}
			rec.Classes = append(rec.Classes, d)
			r.prevCount[i], r.prevSum[i] = ch.Count(), ch.Sum()
		}
		for _, c := range h.Counters() {
			delta := c.Value - r.prevCounters[c.Name]
			r.prevCounters[c.Name] = c.Value
			rec.Counters = append(rec.Counters, stats.Counter{Name: c.Name, Value: delta})
			switch c.Name {
			case "pred.amt.hit":
				rec.AMTHits = delta
			case "pred.amt.miss":
				rec.AMTMisses = delta
			}
		}
		if n := rec.AMTHits + rec.AMTMisses; n > 0 {
			rec.AMTHitRate = float64(rec.AMTHits) / float64(n)
		}
	}
	if len(r.records) == r.cap {
		r.records = append(r.records[:0], r.records[1:]...)
		r.records = r.records[:r.cap-1]
		r.dropped++
	}
	r.records = append(r.records, rec)
	r.last = now
	r.prev = s
}

// Series is the exportable time-series.
type Series struct {
	Period  sim.Tick `json:"period"`
	Dropped uint64   `json:"dropped"`
	Records []Record `json:"records"`
}

// Series returns the recorded intervals.
func (r *Recorder) Series() *Series {
	return &Series{Period: r.period, Dropped: r.dropped, Records: r.records}
}

// WriteJSON writes the series as indented JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Series())
}

// WriteCSV writes the series as a fixed-column CSV time-series: interval
// bounds, instructions, per-class (count, mean latency) pairs in class
// declaration order, then NoC, HBM and AMT columns.
func (r *Recorder) WriteCSV(w io.Writer) error {
	header := "start,end,instructions"
	for _, c := range r.classes {
		header += fmt.Sprintf(",%s_count,%s_mean", c, c)
	}
	header += ",flit_hops,link_util,hbm_reads,hbm_writes,hbm_bw,amt_hits,amt_misses,amt_hit_rate\n"
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	for _, rec := range r.records {
		row := fmt.Sprintf("%d,%d,%d", rec.Start, rec.End, rec.Instructions)
		if len(rec.Classes) == len(r.classes) {
			for _, d := range rec.Classes {
				row += fmt.Sprintf(",%d,%s", d.Count, stats.F(d.Mean))
			}
		} else {
			// Run without a bus: class columns are all zero.
			for range r.classes {
				row += ",0,0.000"
			}
		}
		row += fmt.Sprintf(",%d,%s,%d,%d,%s,%d,%d,%s\n",
			rec.FlitHops, stats.F(rec.LinkUtilization),
			rec.HBMReads, rec.HBMWrites, stats.F(rec.HBMBandwidth),
			rec.AMTHits, rec.AMTMisses, stats.F(rec.AMTHitRate))
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}
