package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dynamo/internal/memory"
	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

func line(i int) memory.Addr { return memory.Addr(0x10000 + i*memory.LineSize) }

func TestProfilerBoundedAndHotSurvives(t *testing.T) {
	p := NewProfiler(4)
	for i := 0; i < 50; i++ {
		p.ObserveAMO(line(100), i%3 == 0)
	}
	// A long cold stream of distinct lines churns the table but cannot
	// evict the hot line: its count always exceeds the table minimum.
	for i := 0; i < 40; i++ {
		p.ObserveAMO(line(i), false)
	}
	rep := p.Report(nil)
	if len(rep.Lines) > 4 {
		t.Fatalf("table exceeded bound: %d lines", len(rep.Lines))
	}
	if rep.TotalAMOs != 90 {
		t.Fatalf("TotalAMOs = %d, want 90", rep.TotalAMOs)
	}
	hot := rep.Lines[0]
	if hot.Line != line(100) {
		t.Fatalf("hottest line = %#x, want %#x", uint64(hot.Line), uint64(line(100)))
	}
	// Space-saving never undercounts; the lower bound AMOs-Err never
	// exceeds the true count.
	if hot.AMOs < 50 {
		t.Fatalf("hot count %d undercounts true 50", hot.AMOs)
	}
	if hot.AMOs-hot.Err > 50 {
		t.Fatalf("lower bound %d exceeds true 50", hot.AMOs-hot.Err)
	}
	if hot.Near+hot.Far != hot.AMOs {
		t.Fatalf("near %d + far %d != amos %d", hot.Near, hot.Far, hot.AMOs)
	}
}

func TestProfilerSnoopOnlyNotAdmitted(t *testing.T) {
	p := NewProfiler(2)
	p.ObserveSnoop(line(1), 3)
	p.ObserveSnoopForward(line(1))
	p.ObserveHNOccupancy(line(1), 7)
	if rep := p.Report(nil); len(rep.Lines) != 0 || rep.TotalAMOs != 0 {
		t.Fatalf("snoop-only traffic admitted a line: %+v", rep)
	}

	// Once a line is admitted by an AMO, snoop traffic accumulates on it.
	p.ObserveAMO(line(1), true)
	p.ObserveSnoop(line(1), 4)
	p.ObserveSnoop(line(1), 2)
	p.ObserveSnoopForward(line(1))
	p.ObserveHNOccupancy(line(1), 10)
	hl := p.Report(nil).Lines[0]
	if hl.Snoops != 2 || hl.MeanSharers != 3 || hl.Forwards != 1 || hl.MeanHNTicks != 10 {
		t.Fatalf("accumulation on tracked line: %+v", hl)
	}
}

func TestProfilerDeterministic(t *testing.T) {
	drive := func() *Profiler {
		p := NewProfiler(3)
		for i := 0; i < 200; i++ {
			p.ObserveAMO(line(i%7), i%5 == 0)
			if i%4 == 0 {
				p.ObserveSnoop(line(i%7), 1+i%3)
			}
		}
		return p
	}
	a, b := drive().Report(nil), drive().Report(nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical event sequences produced different reports:\n%+v\n%+v", a, b)
	}
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("report JSON is not byte-identical")
	}
}

func TestReportAttributionAndTable(t *testing.T) {
	p := NewProfiler(4)
	p.ObserveAMO(0x1040, false)
	p.ObserveAMO(0x1040, false)
	p.ObserveAMO(0x9000, true)
	resolve := func(a memory.Addr) (obs.Site, bool) {
		if a >= 0x1000 && a < 0x1100 {
			return obs.Site{Name: "buckets", Base: 0x1000, Bytes: 0x100}, true
		}
		return obs.Site{}, false
	}
	rep := p.Report(resolve)
	if rep.Lines[0].Site != "buckets" || rep.Lines[0].Offset != 0x40 {
		t.Fatalf("attribution: %+v", rep.Lines[0])
	}
	if rep.Lines[1].Site != "" {
		t.Fatalf("unattributed line got site %q", rep.Lines[1].Site)
	}
	tbl := rep.Table().String()
	if !strings.Contains(tbl, "buckets+64") || !strings.Contains(tbl, "0x9000") {
		t.Fatalf("table rendering:\n%s", tbl)
	}
}

func TestRecorderDeltasAndRing(t *testing.T) {
	b := obs.New(obs.Options{})
	r := NewRecorder(100, 2)

	id := b.BeginTxn(0, obs.ClassLoad, 0, 0)
	b.EndTxn(id, 10)
	b.Count("pred.amt.hit", 3)
	b.Count("pred.amt.miss", 1)
	r.Observe(100, Sample{Instructions: 1000, FlitHops: 400, HBMReads: 4, HBMWrites: 2, Links: 4, LineBytes: 64}, b.Histograms())

	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	rec := r.Series().Records[0]
	if rec.Start != 0 || rec.End != 100 || rec.Instructions != 1000 || rec.FlitHops != 400 {
		t.Fatalf("record bounds: %+v", rec)
	}
	if rec.LinkUtilization != 1.0 {
		t.Fatalf("link util = %g, want 1.0", rec.LinkUtilization)
	}
	if rec.HBMBandwidth != 3.84 {
		t.Fatalf("hbm bw = %g, want 3.84", rec.HBMBandwidth)
	}
	if rec.AMTHits != 3 || rec.AMTMisses != 1 || rec.AMTHitRate != 0.75 {
		t.Fatalf("amt: %+v", rec)
	}
	if len(rec.Classes) != len(obs.AllClasses()) {
		t.Fatalf("classes = %d, want full set %d", len(rec.Classes), len(obs.AllClasses()))
	}
	var load ClassDelta
	for _, d := range rec.Classes {
		if d.Name == obs.ClassLoad.String() {
			load = d
		}
	}
	if load.Count != 1 || load.Cycles != 10 || load.Mean != 10 {
		t.Fatalf("load delta: %+v", load)
	}

	// Second interval with no new bus activity: class deltas go to zero,
	// cumulative sample fields difference correctly.
	r.Observe(200, Sample{Instructions: 1500, FlitHops: 500, HBMReads: 4, HBMWrites: 2, Links: 4, LineBytes: 64}, b.Histograms())
	rec2 := r.Series().Records[1]
	if rec2.Instructions != 500 || rec2.FlitHops != 100 || rec2.HBMReads != 0 {
		t.Fatalf("second record deltas: %+v", rec2)
	}
	for _, d := range rec2.Classes {
		if d.Count != 0 {
			t.Fatalf("stale class delta: %+v", d)
		}
	}

	// Third interval overflows the cap-2 ring: oldest dropped.
	r.Observe(300, Sample{Instructions: 1500, FlitHops: 500, Links: 4, LineBytes: 64}, b.Histograms())
	if r.Len() != 2 || r.Dropped() != 1 {
		t.Fatalf("ring: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	if first := r.Series().Records[0]; first.Start != 100 {
		t.Fatalf("oldest surviving record starts at %d, want 100", first.Start)
	}

	// Re-observing the same instant (the drain-time tail sample) is a no-op.
	r.Observe(300, Sample{Instructions: 9999}, b.Histograms())
	if r.Len() != 2 || r.Dropped() != 1 {
		t.Fatal("zero-length interval was recorded")
	}
}

func TestRecorderExportDeterministic(t *testing.T) {
	drive := func() *Recorder {
		b := obs.New(obs.Options{})
		r := NewRecorder(50, 0)
		for i := 1; i <= 5; i++ {
			id := b.BeginTxn(0, obs.ClassAMO, memory.Addr(i*64), 1)
			b.EndTxn(id, sim.Tick(5*i))
			b.Count("pred.near", uint64(i))
			r.Observe(sim.Tick(50*i), Sample{Instructions: uint64(100 * i), Links: 2, LineBytes: 64}, b.Histograms())
		}
		return r
	}
	a, b := drive(), drive()
	var ca, cb, ja, jb bytes.Buffer
	if err := a.WriteCSV(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("CSV export is not byte-identical")
	}
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("JSON export is not byte-identical")
	}
	if !strings.HasPrefix(ca.String(), "start,end,instructions,") {
		t.Fatalf("CSV header: %q", strings.SplitN(ca.String(), "\n", 2)[0])
	}
	if lines := strings.Count(ca.String(), "\n"); lines != 6 {
		t.Fatalf("CSV rows = %d, want header + 5", lines)
	}
}
