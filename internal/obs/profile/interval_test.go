package profile

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

// csvColumns is the fixed column count of WriteCSV: interval bounds and
// instructions, a (count, mean) pair per class, then NoC/HBM/AMT columns.
func csvColumns() int { return 3 + 2*len(obs.AllClasses()) + 8 }

func TestIntervalExportEmptyRing(t *testing.T) {
	r := NewRecorder(100, 4)

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("empty ring CSV = %d lines, want header only:\n%s", len(lines), csv.String())
	}
	if got := len(strings.Split(lines[0], ",")); got != csvColumns() {
		t.Fatalf("header columns = %d, want %d", got, csvColumns())
	}
	if !strings.HasPrefix(lines[0], "start,end,instructions,") ||
		!strings.HasSuffix(lines[0], ",amt_hits,amt_misses,amt_hit_rate") {
		t.Fatalf("header = %q", lines[0])
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var s Series
	if err := json.Unmarshal(js.Bytes(), &s); err != nil {
		t.Fatalf("empty ring JSON does not parse: %v\n%s", err, js.String())
	}
	if s.Period != 100 || s.Dropped != 0 || len(s.Records) != 0 {
		t.Fatalf("empty series = %+v", s)
	}
}

func TestIntervalExportSingleRecordNoBus(t *testing.T) {
	r := NewRecorder(50, 4)
	// A run without a bus passes nil histograms: class latency columns must
	// still line up, rendered as zeros.
	r.Observe(50, Sample{Instructions: 123, FlitHops: 10}, nil)

	if r.Len() != 1 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	rec := r.Series().Records[0]
	if rec.Start != 0 || rec.End != 50 || rec.Instructions != 123 {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Classes) != 0 {
		t.Fatalf("nil histograms recorded %d class deltas", len(rec.Classes))
	}
	// Links/LineBytes of 0 disable the derived rates.
	if rec.LinkUtilization != 0 || rec.HBMBandwidth != 0 {
		t.Fatalf("derived rates without topology: %+v", rec)
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row", len(lines))
	}
	row := strings.Split(lines[1], ",")
	if len(row) != csvColumns() {
		t.Fatalf("row columns = %d, want %d:\n%s", len(row), csvColumns(), lines[1])
	}
	if row[0] != "0" || row[1] != "50" || row[2] != "123" {
		t.Fatalf("row bounds = %v", row[:3])
	}
	// The zero-fill branch: every class pair is ",0,0.000".
	for i := 0; i < len(obs.AllClasses()); i++ {
		if row[3+2*i] != "0" || row[4+2*i] != "0.000" {
			t.Fatalf("class pair %d = (%s, %s), want (0, 0.000)", i, row[3+2*i], row[4+2*i])
		}
	}
}

func TestIntervalExportRingWraparound(t *testing.T) {
	r := NewRecorder(10, 2)
	for i := 1; i <= 4; i++ {
		r.Observe(sim.Tick(i*10), Sample{Instructions: uint64(i) * 100}, nil)
	}

	if r.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	s := r.Series()
	if s.Dropped != 2 || len(s.Records) != 2 {
		t.Fatalf("series = dropped %d, %d records", s.Dropped, len(s.Records))
	}
	// The two oldest intervals were evicted; the survivors are [20,30) and
	// [30,40), each with the 100-instruction delta.
	if s.Records[0].Start != 20 || s.Records[0].End != 30 ||
		s.Records[1].Start != 30 || s.Records[1].End != 40 {
		t.Fatalf("surviving bounds: %+v", s.Records)
	}
	for i, rec := range s.Records {
		if rec.Instructions != 100 {
			t.Fatalf("record %d instructions = %d, want delta 100", i, rec.Instructions)
		}
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", got)
	}
}

func TestIntervalObserveIgnoresZeroLengthInterval(t *testing.T) {
	r := NewRecorder(10, 4)
	r.Observe(10, Sample{Instructions: 100}, nil)
	// The machine unconditionally samples at drain time; a re-sample of the
	// same tick (or an earlier one) must not create an empty interval.
	r.Observe(10, Sample{Instructions: 999}, nil)
	r.Observe(5, Sample{Instructions: 999}, nil)
	r.Observe(0, Sample{}, nil)

	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1 (zero-length intervals ignored)", r.Len())
	}
	rec := r.Series().Records[0]
	if rec.Start != 0 || rec.End != 10 || rec.Instructions != 100 {
		t.Fatalf("record = %+v", rec)
	}
	// The ignored samples did not disturb the delta baseline.
	r.Observe(20, Sample{Instructions: 150}, nil)
	if got := r.Series().Records[1].Instructions; got != 50 {
		t.Fatalf("post-ignore delta = %d, want 50", got)
	}
}

func TestIntervalJSONRoundTripWithBus(t *testing.T) {
	b := obs.New(obs.Options{})
	r := NewRecorder(100, 4)

	id := b.BeginTxn(0, obs.ClassNearAMO, 0, 0)
	b.EndTxn(id, 40)
	b.Count("pred.amt.hit", 2)
	r.Observe(100, Sample{Instructions: 500, Links: 4, LineBytes: 64}, b.Histograms())

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var s Series
	if err := json.Unmarshal(js.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Records) != 1 {
		t.Fatalf("records = %d", len(s.Records))
	}
	rec := s.Records[0]
	if len(rec.Classes) != len(obs.AllClasses()) {
		t.Fatalf("classes = %d, want full set %d", len(rec.Classes), len(obs.AllClasses()))
	}
	var near ClassDelta
	for _, d := range rec.Classes {
		if d.Name == obs.ClassNearAMO.String() {
			near = d
		}
	}
	if near.Count != 1 || near.Cycles != 40 || near.Mean != 40 {
		t.Fatalf("near delta survived JSON badly: %+v", near)
	}
	if rec.AMTHits != 2 || rec.AMTHitRate != 1.0 {
		t.Fatalf("amt: %+v", rec)
	}
}
