package obs

import (
	"bufio"
	"fmt"
	"io"
)

// TraceEvents streams one Chrome trace-event JSON document — the format
// ui.perfetto.dev and chrome://tracing open natively. It writes the
// document header on construction, comma-separates emitted events, and
// closes the array on Close. Both the simulation timeline (WriteTimeline)
// and the sweep job tracer (internal/telemetry) render through it, so
// their exports share one schema and one escaping discipline.
type TraceEvents struct {
	bw    *bufio.Writer
	first bool
}

// NewTraceEvents starts a trace-event document on w. Simulated cycles (or
// any microsecond-granularity timestamps) render with 1 unit = 1 us.
func NewTraceEvents(w io.Writer) *TraceEvents {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return &TraceEvents{bw: bw, first: true}
}

// Emit appends one event object, formatted printf-style. The format must
// produce a complete JSON object; use %q for any free-form string so
// quoting stays JSON-clean.
func (t *TraceEvents) Emit(format string, args ...any) {
	if !t.first {
		t.bw.WriteByte(',')
	}
	t.first = false
	fmt.Fprintf(t.bw, format, args...)
}

// Close terminates the event array and flushes the writer.
func (t *TraceEvents) Close() error {
	t.bw.WriteString("]}\n")
	return t.bw.Flush()
}
