package obs

import "testing"

func TestHistQuantileEdges(t *testing.T) {
	// Empty histogram: every quantile is 0.
	var empty Hist
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty q%g = %g", q, got)
		}
	}

	// Single bucket: samples 16..31 all land in one log2 bucket; quantiles
	// interpolate inside it, clamped to observed min/max and monotonic.
	var one Hist
	for v := uint64(16); v < 32; v++ {
		one.Observe(v)
	}
	prev := 0.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := one.Quantile(q)
		if got < 16 || got > 31 {
			t.Fatalf("single-bucket q%g = %g outside [16,31]", q, got)
		}
		if got < prev {
			t.Fatalf("quantiles not monotonic: q%g = %g < %g", q, got, prev)
		}
		prev = got
	}

	// Overflow bucket: values with the top bit set occupy the last bucket
	// (index 64); quantiles stay within the observed range, no overflow.
	var of Hist
	of.Observe(1 << 63)
	of.Observe(^uint64(0))
	buckets := of.Buckets()
	if buckets[64] != 2 {
		t.Fatalf("top-bit samples in bucket 64: %d, want 2", buckets[64])
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := of.Quantile(q)
		if got < float64(uint64(1)<<63) || got > float64(^uint64(0)) {
			t.Fatalf("overflow-bucket q%g = %g outside observed range", q, got)
		}
	}
}

func TestHistSnapshotAndMerge(t *testing.T) {
	var a, b, all Hist
	for _, v := range []uint64{1, 2, 3, 100} {
		a.Observe(v)
		all.Observe(v)
	}
	snap := a.Snapshot()
	for _, v := range []uint64{50, 7000} {
		b.Observe(v)
		all.Observe(v)
	}

	// Merging the second interval into the first reconstructs the full run.
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() ||
		a.Min() != all.Min() || a.Max() != all.Max() || a.Buckets() != all.Buckets() {
		t.Fatalf("merge mismatch: got count=%d sum=%d min=%d max=%d", a.Count(), a.Sum(), a.Min(), a.Max())
	}

	// The snapshot is a frozen value copy, untouched by the merge.
	if snap.Count() != 4 || snap.Max() != 100 {
		t.Fatalf("snapshot mutated: count=%d max=%d", snap.Count(), snap.Max())
	}

	// Merging an empty (or nil) histogram is a no-op.
	before := a.Snapshot()
	var emptier Hist
	a.Merge(&emptier)
	a.Merge(nil)
	if a != before {
		t.Fatal("merging empty histogram changed state")
	}

	// Merging into an empty histogram copies min/max rather than keeping
	// the zero min.
	var dst Hist
	dst.Merge(&all)
	if dst.Min() != 1 || dst.Max() != 7000 || dst.Count() != all.Count() {
		t.Fatalf("merge into empty: min=%d max=%d count=%d", dst.Min(), dst.Max(), dst.Count())
	}
}
