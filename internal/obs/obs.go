// Package obs is the simulator's observability subsystem: a probe bus that
// timing components publish typed transaction-lifecycle events to, feeding
// two collectors — log2-bucketed latency histograms keyed by transaction
// class and component phase, and a Chrome trace-event timeline that opens
// directly in ui.perfetto.dev.
//
// The bus is designed to cost nothing when observability is off: every
// publishing method is safe on a nil *Bus and returns immediately, so a
// disabled probe is a nil check. Components therefore hold a plain *Bus
// field (nil by default) and publish unconditionally.
//
// All events are published from simulation events, which the engine runs
// single-threaded in deterministic order, so collected histograms and
// exported timelines are byte-identical across runs of the same seed and
// configuration.
package obs

import (
	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// Class is the transaction class a lifecycle event belongs to. AMOs begin
// as ClassAMO and are reclassified to near or far once the placement
// decision is made.
type Class uint8

const (
	ClassLoad Class = iota
	ClassStore
	ClassAMO // placement not yet decided
	ClassNearAMO
	ClassFarAMO
	ClassSnoop
	ClassWriteBack

	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassAMO:
		return "amo"
	case ClassNearAMO:
		return "near-amo"
	case ClassFarAMO:
		return "far-amo"
	case ClassSnoop:
		return "snoop"
	case ClassWriteBack:
		return "writeback"
	}
	return "class?"
}

// Phase is one stage of a transaction's life. A transaction is in exactly
// one phase at a time; the duration of a phase runs from its Phase event to
// the next Phase (or End) event of the same transaction.
type Phase uint8

const (
	// PhaseIssue covers RN issue plus the private L1/L2 lookups.
	PhaseIssue Phase = iota
	// PhaseMSHRWait covers requests merged into an in-flight fill.
	PhaseMSHRWait
	// PhaseNoCReq is the request's mesh traversal to the home node.
	PhaseNoCReq
	// PhaseHNDir is the home-node directory pipeline.
	PhaseHNDir
	// PhaseSnoop is the snoop round-trip the home node waits on.
	PhaseSnoop
	// PhaseHNData is the LLC data array or AMO-buffer access.
	PhaseHNData
	// PhaseHBM is a main-memory access.
	PhaseHBM
	// PhaseALU is the far-AMO ALU operation (including pipeline queueing).
	PhaseALU
	// PhaseNoCResp is the response's mesh traversal back to the requestor.
	PhaseNoCResp

	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIssue:
		return "issue"
	case PhaseMSHRWait:
		return "mshr-wait"
	case PhaseNoCReq:
		return "noc-req"
	case PhaseHNDir:
		return "hn-dir"
	case PhaseSnoop:
		return "snoop"
	case PhaseHNData:
		return "hn-data"
	case PhaseHBM:
		return "hbm"
	case PhaseALU:
		return "amo-alu"
	case PhaseNoCResp:
		return "noc-resp"
	}
	return "phase?"
}

// TrackGroup partitions timeline tracks by component type.
type TrackGroup uint8

const (
	TrackCore TrackGroup = iota
	TrackHN
	TrackNoC
	TrackHBM

	numTrackGroups
)

// String names the group; it doubles as the Perfetto process name.
func (g TrackGroup) String() string {
	switch g {
	case TrackCore:
		return "cores"
	case TrackHN:
		return "home-nodes"
	case TrackNoC:
		return "noc-links"
	case TrackHBM:
		return "hbm-channels"
	}
	return "track?"
}

// Track identifies one timeline row: a core, a home-node slice, a mesh
// link, or a memory channel.
type Track struct {
	Group TrackGroup
	ID    int
}

// TxnID identifies one in-flight transaction on the bus. Zero is reserved
// for "not tracked" (disabled bus or untracked request) and is accepted and
// ignored by every method.
type TxnID uint64

// Options selects what the bus collects. Histograms are always on for an
// enabled bus (they are cheap); the timeline buffers every event until
// export and is opt-in.
type Options struct {
	// Timeline buffers lifecycle events and component spans for
	// WriteTimeline. Memory grows with the run; intended for scaled-down
	// runs that will be inspected visually.
	Timeline bool
}

// Bus is the probe bus. A nil *Bus is a valid, permanently disabled bus:
// every method short-circuits, so components publish unconditionally.
type Bus struct {
	hist     *Histograms
	timeline *Timeline
	nextID   TxnID

	// contention, when non-nil, receives per-cacheline AMO/snoop events
	// (see ContentionObserver in contention.go).
	contention ContentionObserver
	// sites are workload-level region annotations for report attribution.
	sites       []Site
	sitesSorted bool
	siteMaxLen  int64
}

// New builds an enabled bus.
func New(opt Options) *Bus {
	b := &Bus{hist: newHistograms()}
	if opt.Timeline {
		b.timeline = newTimeline()
	}
	return b
}

// Enabled reports whether the bus collects anything. It is the guard for
// publish sites that would otherwise do work (formatting, extra lookups)
// just to build an event.
func (b *Bus) Enabled() bool { return b != nil }

// TimelineEnabled reports whether the bus buffers timeline events.
func (b *Bus) TimelineEnabled() bool { return b != nil && b.timeline != nil }

// BeginTxn opens a transaction of the given class at time now, issued by
// core (whose track anchors the transaction's timeline slice) for addr.
// The transaction starts in PhaseIssue.
func (b *Bus) BeginTxn(now sim.Tick, class Class, addr memory.Addr, core int) TxnID {
	if b == nil {
		return 0
	}
	b.nextID++
	id := b.nextID
	b.hist.begin(id, now, class)
	if b.timeline != nil {
		b.timeline.begin(id, now, class, addr, core)
	}
	return id
}

// Reclass rewrites the transaction's class (AMO -> near/far once placement
// is decided). The histogram and timeline report the final class.
func (b *Bus) Reclass(id TxnID, class Class) {
	if b == nil || id == 0 {
		return
	}
	b.hist.reclass(id, class)
	if b.timeline != nil {
		b.timeline.reclass(id, class)
	}
}

// Phase moves the transaction into phase ph at time now. Events for a
// transaction must carry non-decreasing times; events after EndTxn are
// dropped (an AtomicStore completes for the requestor before its ALU work
// finishes).
func (b *Bus) Phase(id TxnID, now sim.Tick, ph Phase) {
	if b == nil || id == 0 {
		return
	}
	b.hist.phase(id, now, ph)
	if b.timeline != nil {
		b.timeline.phase(id, now, ph)
	}
}

// EndTxn closes the transaction at time now, feeding its end-to-end latency
// and final phase duration into the histograms.
func (b *Bus) EndTxn(id TxnID, now sim.Tick) {
	if b == nil || id == 0 {
		return
	}
	b.hist.end(id, now)
	if b.timeline != nil {
		b.timeline.end(id, now)
	}
}

// Span records a completed occupancy interval [start, start+dur) on a
// component track: a link transfer, a channel burst, an ALU operation, a
// core stall. Spans on one track must not overlap (each models an exclusive
// resource); names should come from a small fixed set.
func (b *Bus) Span(track Track, name string, start, dur sim.Tick) {
	if b == nil {
		return
	}
	b.hist.span(name, dur)
	if b.timeline != nil {
		b.timeline.span(track, name, start, dur)
	}
}

// Count adds n to the named free-form counter (predictor telemetry, stall
// cycles). Names are reported in sorted order.
func (b *Bus) Count(name string, n uint64) {
	if b == nil {
		return
	}
	b.hist.count(name, n)
}

// Histograms returns the histogram collector, or nil on a disabled bus.
func (b *Bus) Histograms() *Histograms {
	if b == nil {
		return nil
	}
	return b.hist
}

// Report summarizes the collected histograms, or returns nil on a disabled
// bus.
func (b *Bus) Report() *Report {
	if b == nil {
		return nil
	}
	return b.hist.Report()
}
