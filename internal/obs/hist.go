package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dynamo/internal/sim"
	"dynamo/internal/stats"
)

// histBuckets is the bucket count of a log2 histogram: bucket i counts
// values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i), with 0 in bucket 0.
// 64 buckets cover every uint64 latency.
const histBuckets = 65

// Hist is a log2-bucketed latency histogram.
type Hist struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe adds one sample.
func (h *Hist) Observe(v uint64) {
	h.buckets[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

func bucketOf(v uint64) int { return bits.Len64(v) }

// Count returns the number of samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Min returns the smallest sample (0 if empty).
func (h *Hist) Min() uint64 { return h.min }

// Max returns the largest sample (0 if empty).
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the containing log2 bucket, clamped to the observed min/max. It
// returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var seen float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / float64(c)
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, float64(h.min)), float64(h.max))
		}
		seen += float64(c)
	}
	return float64(h.max)
}

// bucketBounds returns the value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Exp2(float64(i - 1)), math.Exp2(float64(i))
}

// Buckets returns a copy of the raw bucket counts.
func (h *Hist) Buckets() [histBuckets]uint64 { return h.buckets }

// Snapshot returns a value copy of the histogram, frozen at the current
// counts. Interval telemetry snapshots class histograms to diff against the
// next sample.
func (h *Hist) Snapshot() Hist { return *h }

// Merge folds another histogram into h, as if every sample of o had also
// been observed by h. Merging interval snapshots reconstructs the full-run
// histogram.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
}

// phaseRec marks entry into a phase; its duration runs to the next record
// (or the transaction end).
type phaseRec struct {
	ph    Phase
	start sim.Tick
}

// liveTxn is the collector's view of one in-flight transaction. Phase
// durations are attributed only at end time, so they always land under the
// transaction's final class (AMOs are reclassified once placement is
// decided, which can happen after the first phase transition).
type liveTxn struct {
	class  Class
	begin  sim.Tick
	phases []phaseRec
}

// Histograms accumulates latency distributions from bus events: one
// end-to-end histogram per transaction class, one histogram per
// (class, phase) pair, one per span name, plus free-form counters.
type Histograms struct {
	classes [numClasses]Hist
	phases  [numClasses][numPhases]Hist
	spans   map[string]*Hist
	counter map[string]uint64
	live    map[TxnID]*liveTxn
}

func newHistograms() *Histograms {
	return &Histograms{
		spans:   make(map[string]*Hist),
		counter: make(map[string]uint64),
		live:    make(map[TxnID]*liveTxn),
	}
}

func (h *Histograms) begin(id TxnID, now sim.Tick, class Class) {
	h.live[id] = &liveTxn{class: class, begin: now, phases: []phaseRec{{PhaseIssue, now}}}
}

func (h *Histograms) reclass(id TxnID, class Class) {
	if t, ok := h.live[id]; ok {
		t.class = class
	}
}

func (h *Histograms) phase(id TxnID, now sim.Tick, ph Phase) {
	t, ok := h.live[id]
	if !ok {
		return // transaction already ended (early-acked AtomicStore)
	}
	t.phases = append(t.phases, phaseRec{ph, now})
}

func (h *Histograms) end(id TxnID, now sim.Tick) {
	t, ok := h.live[id]
	if !ok {
		return
	}
	delete(h.live, id)
	for i, p := range t.phases {
		until := now
		if i+1 < len(t.phases) {
			until = t.phases[i+1].start
		}
		h.phases[t.class][p.ph].Observe(uint64(until - p.start))
	}
	h.classes[t.class].Observe(uint64(now - t.begin))
}

func (h *Histograms) span(name string, dur sim.Tick) {
	s, ok := h.spans[name]
	if !ok {
		s = &Hist{}
		h.spans[name] = s
	}
	s.Observe(uint64(dur))
}

func (h *Histograms) count(name string, n uint64) { h.counter[name] += n }

// Class returns the end-to-end latency histogram of a transaction class.
func (h *Histograms) Class(c Class) *Hist { return &h.classes[c] }

// ClassPhase returns the duration histogram of one phase of one class.
func (h *Histograms) ClassPhase(c Class, p Phase) *Hist { return &h.phases[c][p] }

// Counter returns the value of a free-form counter (0 if absent).
func (h *Histograms) Counter(name string) uint64 { return h.counter[name] }

// Counters returns every free-form counter sorted by name.
func (h *Histograms) Counters() []stats.Counter {
	names := make([]string, 0, len(h.counter))
	for n := range h.counter {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]stats.Counter, 0, len(names))
	for _, n := range names {
		out = append(out, stats.Counter{Name: n, Value: h.counter[n]})
	}
	return out
}

// HistSummary is the JSON-friendly digest of one histogram.
type HistSummary struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func summarize(name string, h *Hist) HistSummary {
	return HistSummary{
		Name:  name,
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Report is the deterministic, machine-readable digest of a run's
// observability data: every field is an ordered slice, so JSON encoding is
// byte-stable across runs.
type Report struct {
	// Classes holds one summary per non-empty transaction class.
	Classes []HistSummary `json:"classes"`
	// Phases holds one summary per non-empty (class, phase) pair, named
	// "class/phase".
	Phases []HistSummary `json:"phases"`
	// Spans holds one summary per span name (link transfers, channel
	// bursts, stalls), sorted by name.
	Spans []HistSummary `json:"spans"`
	// Counters holds the free-form counters sorted by name.
	Counters []stats.Counter `json:"counters"`
}

// Report digests the collected histograms.
func (h *Histograms) Report() *Report {
	r := &Report{}
	for c := Class(0); c < numClasses; c++ {
		if h.classes[c].Count() == 0 {
			continue
		}
		r.Classes = append(r.Classes, summarize(c.String(), &h.classes[c]))
		for p := Phase(0); p < numPhases; p++ {
			if h.phases[c][p].Count() == 0 {
				continue
			}
			r.Phases = append(r.Phases, summarize(c.String()+"/"+p.String(), &h.phases[c][p]))
		}
	}
	names := make([]string, 0, len(h.spans))
	for n := range h.spans {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Spans = append(r.Spans, summarize(n, h.spans[n]))
	}
	cnames := make([]string, 0, len(h.counter))
	for n := range h.counter {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		r.Counters = append(r.Counters, stats.Counter{Name: n, Value: h.counter[n]})
	}
	return r
}

// summaryRows renders summaries into a table.
func summaryRows(t *stats.Table, sums []HistSummary) {
	for _, s := range sums {
		t.AddRow(s.Name, fmt.Sprint(s.Count), stats.F(s.Mean),
			stats.F(s.P50), stats.F(s.P95), stats.F(s.P99),
			fmt.Sprint(s.Min), fmt.Sprint(s.Max))
	}
}

// Table renders the per-class and per-phase latency histograms as an
// aligned text table (latencies in cycles).
func (r *Report) Table() *stats.Table {
	t := &stats.Table{Header: []string{"class", "count", "mean", "p50", "p95", "p99", "min", "max"}}
	summaryRows(t, r.Classes)
	summaryRows(t, r.Phases)
	return t
}

// SpanTable renders the component-occupancy span histograms.
func (r *Report) SpanTable() *stats.Table {
	t := &stats.Table{Header: []string{"span", "count", "mean", "p50", "p95", "p99", "min", "max"}}
	summaryRows(t, r.Spans)
	return t
}

// CounterTable renders the free-form counters.
func (r *Report) CounterTable() *stats.Table {
	t := &stats.Table{Header: []string{"counter", "value"}}
	for _, c := range r.Counters {
		t.AddRow(c.Name, fmt.Sprint(c.Value))
	}
	return t
}
