package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	if b.Enabled() || b.TimelineEnabled() {
		t.Fatal("nil bus reports enabled")
	}
	id := b.BeginTxn(0, ClassLoad, 0x40, 3)
	if id != 0 {
		t.Fatalf("nil bus issued txn id %d", id)
	}
	b.Reclass(id, ClassFarAMO)
	b.Phase(id, 5, PhaseNoCReq)
	b.EndTxn(id, 10)
	b.Span(Track{TrackHBM, 1}, "burst", 0, 2)
	b.Count("x", 1)
	if b.Histograms() != nil || b.Report() != nil {
		t.Fatal("nil bus returned collectors")
	}
	if err := b.WriteTimeline(&bytes.Buffer{}); err == nil {
		t.Fatal("nil bus WriteTimeline succeeded")
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
	h.Observe(7)
	if h.Count() != 1 || h.Sum() != 7 || h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("single-sample stats: count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if got := h.Quantile(0.99); got != 7 {
		t.Fatalf("single-sample p99 = %g, want 7 (clamped to max)", got)
	}
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("stats after 6 samples: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != float64(h.Sum())/6 {
		t.Fatalf("mean = %g", h.Mean())
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 1 || p50 > 100 {
		t.Fatalf("p50 = %g out of plausible range", p50)
	}
	if p99 < p50 || p99 > 1000 {
		t.Fatalf("p99 = %g (p50 = %g)", p99, p50)
	}
}

func TestHistZeroSample(t *testing.T) {
	var h Hist
	h.Observe(0)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("zero sample: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("p50 of {0} = %g", got)
	}
}

func TestTxnLifecycleFeedsHistograms(t *testing.T) {
	b := New(Options{})
	id := b.BeginTxn(100, ClassAMO, 0x80, 2)
	b.Reclass(id, ClassFarAMO)
	b.Phase(id, 110, PhaseNoCReq)
	b.Phase(id, 130, PhaseHNDir)
	b.Phase(id, 135, PhaseALU)
	b.EndTxn(id, 150)

	h := b.Histograms()
	if got := h.Class(ClassFarAMO).Count(); got != 1 {
		t.Fatalf("far-amo count = %d", got)
	}
	if got := h.Class(ClassFarAMO).Sum(); got != 50 {
		t.Fatalf("far-amo latency sum = %d, want 50", got)
	}
	if got := h.Class(ClassAMO).Count(); got != 0 {
		t.Fatalf("provisional amo class kept %d samples after reclass", got)
	}
	// Phase durations: issue 10, noc-req 20, hn-dir 5, alu 15 — all under
	// the final class.
	cases := []struct {
		ph   Phase
		want uint64
	}{{PhaseIssue, 10}, {PhaseNoCReq, 20}, {PhaseHNDir, 5}, {PhaseALU, 15}}
	for _, c := range cases {
		ph := h.ClassPhase(ClassFarAMO, c.ph)
		if ph.Count() != 1 || ph.Sum() != c.want {
			t.Fatalf("phase %v: count=%d sum=%d, want sum %d", c.ph, ph.Count(), ph.Sum(), c.want)
		}
	}
	// Events after the end are dropped (early-acked AtomicStore).
	b.Phase(id, 160, PhaseALU)
	b.EndTxn(id, 170)
	if got := h.Class(ClassFarAMO).Count(); got != 1 {
		t.Fatalf("post-end events changed count to %d", got)
	}
}

func TestReportOrderingAndCounters(t *testing.T) {
	b := New(Options{})
	b.Count("zeta", 2)
	b.Count("alpha", 1)
	b.Count("zeta", 3)
	b.Span(Track{TrackNoC, 5}, "link", 10, 2)
	b.Span(Track{TrackHBM, 0}, "burst", 10, 4)
	id := b.BeginTxn(0, ClassLoad, 0, 0)
	b.EndTxn(id, 8)

	r := b.Report()
	if len(r.Classes) != 1 || r.Classes[0].Name != "load" || r.Classes[0].Sum != 8 {
		t.Fatalf("classes = %+v", r.Classes)
	}
	if len(r.Counters) != 2 || r.Counters[0].Name != "alpha" || r.Counters[1].Value != 5 {
		t.Fatalf("counters = %+v", r.Counters)
	}
	if len(r.Spans) != 2 || r.Spans[0].Name != "burst" || r.Spans[1].Name != "link" {
		t.Fatalf("spans = %+v", r.Spans)
	}
	tbl := r.Table().String()
	if !strings.Contains(tbl, "load") || !strings.Contains(tbl, "p99") {
		t.Fatalf("table missing expected content:\n%s", tbl)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
}

// drive publishes one fixed event sequence.
func drive(b *Bus) {
	id := b.BeginTxn(10, ClassAMO, 0x1040, 1)
	b.Reclass(id, ClassNearAMO)
	b.Phase(id, 12, PhaseNoCReq)
	b.Phase(id, 20, PhaseHNDir)
	b.Phase(id, 25, PhaseNoCResp)
	b.EndTxn(id, 30)
	id2 := b.BeginTxn(11, ClassStore, 0x2000, 4)
	b.Span(Track{TrackNoC, 9}, "link", 12, 3)
	b.Span(Track{TrackHBM, 2}, "burst", 15, 2)
	b.EndTxn(id2, 40)
	sn := b.BeginTxn(20, ClassSnoop, 0x1040, 7)
	b.EndTxn(sn, 33)
	b.BeginTxn(35, ClassLoad, 0x3000, 0) // still in flight at run end
}

func TestTimelineExport(t *testing.T) {
	b := New(Options{Timeline: true})
	drive(b)
	var buf bytes.Buffer
	if err := b.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !json.Valid(out) {
		t.Fatalf("timeline is not valid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	for _, want := range []string{`"near-amo"`, `"noc-req"`, `"link n2.W"`, `"channel 2"`, `"cores"`, `"ph":"X"`} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("timeline missing %s:\n%.2000s", want, out)
		}
	}

	// Determinism: an identical event sequence exports byte-identically.
	b2 := New(Options{Timeline: true})
	drive(b2)
	var buf2 bytes.Buffer
	if err := b2.WriteTimeline(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, buf2.Bytes()) {
		t.Fatal("identical event sequences produced different timelines")
	}
}
