package obs

import (
	"sort"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// Site labels a workload-level memory region — a lock, a shared array, a
// reduction cell — so contention reports can attribute hot cache lines back
// to the source-level structure instead of a bare address. Workloads attach
// sites when they carve their address space; the facade registers them on
// the bus before the run starts.
type Site struct {
	// Name is the workload-level symbol ("locks", "buckets", "queue-lock").
	Name string `json:"name"`
	// Base is the first byte of the region.
	Base memory.Addr `json:"base"`
	// Bytes is the region length.
	Bytes int64 `json:"bytes"`
}

// contains reports whether addr falls inside the site.
func (s Site) contains(addr memory.Addr) bool {
	return addr >= s.Base && int64(addr-s.Base) < s.Bytes
}

// RegisterSite attaches one site annotation to the bus. Registration order
// does not matter; lookups sort lazily. Overlapping sites resolve to the
// one with the lowest base (then the first registered).
func (b *Bus) RegisterSite(s Site) {
	if b == nil || s.Bytes <= 0 {
		return
	}
	b.sites = append(b.sites, s)
	b.sitesSorted = false
	b.siteMaxLen = 0
}

// Sites returns the registered site annotations sorted by base address.
func (b *Bus) Sites() []Site {
	if b == nil {
		return nil
	}
	b.sortSites()
	return b.sites
}

func (b *Bus) sortSites() {
	if b.sitesSorted {
		return
	}
	sort.SliceStable(b.sites, func(i, j int) bool { return b.sites[i].Base < b.sites[j].Base })
	b.sitesSorted = true
}

// SiteOf resolves an address to its registered site, if any. It is intended
// for report time, not the hot path: the first call after registration sorts
// the site list, and each lookup is a binary search.
func (b *Bus) SiteOf(addr memory.Addr) (Site, bool) {
	if b == nil || len(b.sites) == 0 {
		return Site{}, false
	}
	b.sortSites()
	// First site with Base > addr; the candidate is the one before it.
	i := sort.Search(len(b.sites), func(i int) bool { return b.sites[i].Base > addr })
	for j := i - 1; j >= 0; j-- {
		if b.sites[j].contains(addr) {
			return b.sites[j], true
		}
		// Sites are disjoint in practice; stop once regions can no longer
		// cover addr (list is sorted by base, so an earlier site reaching
		// addr must be at least as long as this one's span to it).
		if int64(addr-b.sites[j].Base) >= b.maxSiteBytes() {
			break
		}
	}
	return Site{}, false
}

// maxSiteBytes returns the longest registered region, bounding how far back
// SiteOf must scan from the binary-search position.
func (b *Bus) maxSiteBytes() int64 {
	if b.siteMaxLen == 0 {
		for _, s := range b.sites {
			if s.Bytes > b.siteMaxLen {
				b.siteMaxLen = s.Bytes
			}
		}
	}
	return b.siteMaxLen
}

// ContentionObserver receives per-cacheline contention events from the
// coherence protocol. The profile package provides the standard bounded
// top-K implementation; the interface lives here so chi publishes through
// the bus without importing the collector.
type ContentionObserver interface {
	// ObserveAMO records one completed AMO on the line, placed near
	// (executed in the requester's cache) or far (shipped to the HN ALU).
	ObserveAMO(line memory.Addr, far bool)
	// ObserveSnoop records one snoop fan-out for the line targeting the
	// given number of sharers.
	ObserveSnoop(line memory.Addr, sharers int)
	// ObserveSnoopForward records one dirty-data forward from a snooped
	// cache for the line.
	ObserveSnoopForward(line memory.Addr)
	// ObserveHNOccupancy records the HN ALU time one far AMO on the line
	// held (queue wait plus occupancy).
	ObserveHNOccupancy(line memory.Addr, dur sim.Tick)
}

// AttachContention installs the contention observer. A nil bus ignores the
// call; passing nil detaches.
func (b *Bus) AttachContention(o ContentionObserver) {
	if b == nil {
		return
	}
	b.contention = o
}

// Contention returns the attached contention observer, if any. Diagnostic
// reporters use it to reach the profiler behind the bus.
func (b *Bus) Contention() ContentionObserver {
	if b == nil {
		return nil
	}
	return b.contention
}

// ProfileAMO forwards a completed AMO placement to the contention observer.
func (b *Bus) ProfileAMO(line memory.Addr, far bool) {
	if b == nil || b.contention == nil {
		return
	}
	b.contention.ObserveAMO(line, far)
}

// ProfileSnoop forwards one snoop fan-out to the contention observer.
func (b *Bus) ProfileSnoop(line memory.Addr, sharers int) {
	if b == nil || b.contention == nil {
		return
	}
	b.contention.ObserveSnoop(line, sharers)
}

// ProfileSnoopForward forwards one dirty-data forward to the contention
// observer.
func (b *Bus) ProfileSnoopForward(line memory.Addr) {
	if b == nil || b.contention == nil {
		return
	}
	b.contention.ObserveSnoopForward(line)
}

// ProfileHNOccupancy forwards one far-AMO ALU occupancy interval to the
// contention observer.
func (b *Bus) ProfileHNOccupancy(line memory.Addr, dur sim.Tick) {
	if b == nil || b.contention == nil {
		return
	}
	b.contention.ObserveHNOccupancy(line, dur)
}

// Leak describes one transaction that was begun but never ended. A clean
// run drains to zero leaks once the engine's event queue empties; leaks
// indicate a protocol path that drops its obs bookkeeping.
type Leak struct {
	ID    TxnID
	Class Class
	Begin sim.Tick
}

// Leaks returns the transactions still open on the bus, sorted by ID. Nil
// for a disabled bus or a fully drained run.
func (b *Bus) Leaks() []Leak {
	if b == nil {
		return nil
	}
	var out []Leak
	for id, t := range b.hist.live {
		out = append(out, Leak{ID: id, Class: t.class, Begin: t.begin})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllClasses lists every transaction class in declaration order.
func AllClasses() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// AllPhases lists every transaction phase in declaration order.
func AllPhases() []Phase {
	out := make([]Phase, 0, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		out = append(out, p)
	}
	return out
}

// KnownCounters lists the free-form counter names the simulator publishes,
// sorted. Maintained by hand alongside the publish sites; discovery output
// (dynamosim -list) and docs render it.
func KnownCounters() []string {
	return []string{
		"cpu.stall-cycles",
		"pred.amt.evict",
		"pred.amt.hit",
		"pred.amt.miss",
		"pred.far",
		"pred.flip",
		"pred.metric.invalidation",
		"pred.metric.near-complete",
		"pred.near",
		"pred.near.no-reuse",
		"pred.near.reused",
	}
}

// KnownSpans lists the occupancy/stall span names the simulator publishes,
// sorted.
func KnownSpans() []string {
	return []string{
		"burst",
		"far-amo",
		"stall:atomic-order",
		"stall:atomic-queue",
		"stall:fence",
		"stall:load-order",
		"stall:store-buffer",
		"xfer",
	}
}
