package obs

import (
	"fmt"
	"io"
	"sort"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// Timeline buffers lifecycle events and occupancy spans for export as a
// Chrome trace-event JSON file (the format ui.perfetto.dev and
// chrome://tracing open natively). Simulated cycles are written as
// microsecond timestamps, so 1 cycle renders as 1 us.
//
// Track layout: one Perfetto "process" per component group (cores, home
// nodes, NoC links, HBM channels) with one named "thread" per component.
// Transactions are emitted as nestable async slices anchored to the
// requesting core's track — the outer slice is the transaction class, the
// nested slices its phases — and occupancy spans as complete ("X") slices
// on their component's track.
type Timeline struct {
	txns  map[TxnID]*tlTxn
	order []TxnID
	spans []tlSpan
}

type tlTxn struct {
	class  Class
	addr   memory.Addr
	core   int
	begin  sim.Tick
	end    sim.Tick
	ended  bool
	phases []phaseRec
}

type tlSpan struct {
	track Track
	name  string
	start sim.Tick
	dur   sim.Tick
}

func newTimeline() *Timeline {
	return &Timeline{txns: make(map[TxnID]*tlTxn)}
}

func (tl *Timeline) begin(id TxnID, now sim.Tick, class Class, addr memory.Addr, core int) {
	tl.txns[id] = &tlTxn{
		class: class, addr: addr, core: core, begin: now,
		phases: []phaseRec{{PhaseIssue, now}},
	}
	tl.order = append(tl.order, id)
}

func (tl *Timeline) reclass(id TxnID, class Class) {
	if t, ok := tl.txns[id]; ok {
		t.class = class
	}
}

func (tl *Timeline) phase(id TxnID, now sim.Tick, ph Phase) {
	if t, ok := tl.txns[id]; ok && !t.ended {
		t.phases = append(t.phases, phaseRec{ph, now})
	}
}

func (tl *Timeline) end(id TxnID, now sim.Tick) {
	if t, ok := tl.txns[id]; ok && !t.ended {
		t.end = now
		t.ended = true
	}
}

func (tl *Timeline) span(track Track, name string, start, dur sim.Tick) {
	tl.spans = append(tl.spans, tlSpan{track: track, name: name, start: start, dur: dur})
}

// pid maps a track group to its Perfetto process id (0 is reserved).
func pid(g TrackGroup) int { return int(g) + 1 }

// trackName labels one timeline row.
func trackName(t Track) string {
	switch t.Group {
	case TrackCore:
		return fmt.Sprintf("core %d", t.ID)
	case TrackHN:
		return fmt.Sprintf("hn %d", t.ID)
	case TrackNoC:
		// Link tracks encode node*4+direction (see package noc).
		return fmt.Sprintf("link n%d.%s", t.ID/4, [4]string{"E", "W", "N", "S"}[t.ID%4])
	case TrackHBM:
		return fmt.Sprintf("channel %d", t.ID)
	}
	return fmt.Sprintf("track %d.%d", t.Group, t.ID)
}

// WriteTimeline exports the buffered timeline as Chrome trace-event JSON.
// The output is byte-identical for identical runs: transactions are written
// in begin order, spans in publish order, and track metadata in sorted
// track order. It returns an error if the bus is nil or was built without
// Options.Timeline.
func (b *Bus) WriteTimeline(w io.Writer) error {
	if b == nil || b.timeline == nil {
		return fmt.Errorf("obs: timeline collection is not enabled")
	}
	return b.timeline.write(w)
}

func (tl *Timeline) write(w io.Writer) error {
	te := NewTraceEvents(w)
	emit := te.Emit

	// Track metadata: name every process and every used thread.
	used := make(map[Track]bool)
	for _, id := range tl.order {
		used[Track{TrackCore, tl.txns[id].core}] = true
	}
	for _, s := range tl.spans {
		used[s.track] = true
	}
	tracks := make([]Track, 0, len(used))
	for t := range used {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].Group != tracks[j].Group {
			return tracks[i].Group < tracks[j].Group
		}
		return tracks[i].ID < tracks[j].ID
	})
	lastGroup := -1
	for _, t := range tracks {
		if int(t.Group) != lastGroup {
			lastGroup = int(t.Group)
			emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"%s"}}`,
				pid(t.Group), t.Group)
			emit(`{"ph":"M","name":"process_sort_index","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
				pid(t.Group), pid(t.Group))
		}
		emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
			pid(t.Group), t.ID, trackName(t))
		emit(`{"ph":"M","name":"thread_sort_index","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
			pid(t.Group), t.ID, t.ID)
	}

	// Transactions: nestable async slices on the requestor's core track.
	for _, id := range tl.order {
		t := tl.txns[id]
		p, tid := pid(TrackCore), t.core
		emit(`{"ph":"b","cat":"txn","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%d,"args":{"addr":"%#x"}}`,
			id, t.class, p, tid, t.begin, uint64(t.addr))
		for i, ph := range t.phases {
			until := t.end
			if i+1 < len(t.phases) {
				until = t.phases[i+1].start
			} else if !t.ended {
				until = ph.start // unfinished at run end: zero-length tail
			}
			emit(`{"ph":"b","cat":"txn","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%d}`,
				id, ph.ph, p, tid, ph.start)
			emit(`{"ph":"e","cat":"txn","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%d}`,
				id, ph.ph, p, tid, until)
		}
		if t.ended {
			emit(`{"ph":"e","cat":"txn","id":%d,"name":"%s","pid":%d,"tid":%d,"ts":%d}`,
				id, t.class, p, tid, t.end)
		}
	}

	// Occupancy spans: complete slices on their component track.
	for _, s := range tl.spans {
		emit(`{"ph":"X","cat":"span","name":"%s","pid":%d,"tid":%d,"ts":%d,"dur":%d}`,
			s.name, pid(s.track.Group), s.track.ID, s.start, s.dur)
	}

	return te.Close()
}

// Events reports how many transactions and spans the timeline holds.
func (tl *Timeline) Events() (txns, spans int) { return len(tl.order), len(tl.spans) }
