package obs

import (
	"sort"
	"testing"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

func TestSiteRegistrationAndLookup(t *testing.T) {
	b := New(Options{})
	// Out-of-order registration; zero-length sites are ignored.
	b.RegisterSite(Site{Name: "locks", Base: 0x2000, Bytes: 128})
	b.RegisterSite(Site{Name: "buckets", Base: 0x1000, Bytes: 64})
	b.RegisterSite(Site{Name: "empty", Base: 0x5000, Bytes: 0})

	sites := b.Sites()
	if len(sites) != 2 || sites[0].Name != "buckets" || sites[1].Name != "locks" {
		t.Fatalf("sites = %+v", sites)
	}
	cases := []struct {
		addr memory.Addr
		want string
		ok   bool
	}{
		{0x1000, "buckets", true},
		{0x103f, "buckets", true}, // last byte of the region
		{0x1040, "", false},       // one past the end
		{0x0fff, "", false},       // before the first site
		{0x2070, "locks", true},
		{0x2080, "", false},
		{0x5000, "", false}, // zero-length site never matches
	}
	for _, c := range cases {
		s, ok := b.SiteOf(c.addr)
		if ok != c.ok || (ok && s.Name != c.want) {
			t.Errorf("SiteOf(%#x) = (%q, %v), want (%q, %v)", c.addr, s.Name, ok, c.want, c.ok)
		}
	}

	// Registering after a lookup invalidates the cached sort and bound.
	b.RegisterSite(Site{Name: "wide", Base: 0x100, Bytes: 0x10000})
	if s, ok := b.SiteOf(0x9000); !ok || s.Name != "wide" {
		t.Fatalf("SiteOf after late registration = (%q, %v)", s.Name, ok)
	}
}

// countObserver records contention callbacks for assertion.
type countObserver struct {
	amos, far, snoops, sharers, fwds int
	hn                               sim.Tick
}

func (o *countObserver) ObserveAMO(line memory.Addr, far bool) {
	o.amos++
	if far {
		o.far++
	}
}
func (o *countObserver) ObserveSnoop(line memory.Addr, sharers int) {
	o.snoops++
	o.sharers += sharers
}
func (o *countObserver) ObserveSnoopForward(line memory.Addr) { o.fwds++ }
func (o *countObserver) ObserveHNOccupancy(line memory.Addr, dur sim.Tick) {
	o.hn += dur
}

func TestContentionForwarding(t *testing.T) {
	b := New(Options{})
	// No observer attached: publishes are dropped.
	b.ProfileAMO(0x40, true)

	var o countObserver
	b.AttachContention(&o)
	b.ProfileAMO(0x40, true)
	b.ProfileAMO(0x40, false)
	b.ProfileSnoop(0x40, 3)
	b.ProfileSnoopForward(0x40)
	b.ProfileHNOccupancy(0x40, 9)
	if o.amos != 2 || o.far != 1 || o.snoops != 1 || o.sharers != 3 || o.fwds != 1 || o.hn != 9 {
		t.Fatalf("observer state: %+v", o)
	}

	// Detach: publishes are dropped again.
	b.AttachContention(nil)
	b.ProfileAMO(0x40, true)
	if o.amos != 2 {
		t.Fatalf("detached observer still receiving: %d amos", o.amos)
	}
}

func TestNilBusContentionSafe(t *testing.T) {
	var b *Bus
	b.RegisterSite(Site{Name: "x", Base: 0, Bytes: 64})
	if b.Sites() != nil {
		t.Fatal("nil bus returned sites")
	}
	if _, ok := b.SiteOf(0); ok {
		t.Fatal("nil bus resolved a site")
	}
	b.AttachContention(&countObserver{})
	b.ProfileAMO(0, false)
	b.ProfileSnoop(0, 1)
	b.ProfileSnoopForward(0)
	b.ProfileHNOccupancy(0, 1)
	if b.Leaks() != nil {
		t.Fatal("nil bus reported leaks")
	}
}

func TestLeaks(t *testing.T) {
	b := New(Options{})
	id := b.BeginTxn(5, ClassAMO, 0x80, 1)
	id2 := b.BeginTxn(7, ClassLoad, 0x100, 2)
	b.EndTxn(id2, 20)

	leaks := b.Leaks()
	if len(leaks) != 1 || leaks[0].ID != id || leaks[0].Class != ClassAMO || leaks[0].Begin != 5 {
		t.Fatalf("leaks = %+v", leaks)
	}
	b.EndTxn(id, 30)
	if got := b.Leaks(); len(got) != 0 {
		t.Fatalf("leaks after drain = %+v", got)
	}
}

func TestDiscoveryLists(t *testing.T) {
	if got := len(AllClasses()); got == 0 {
		t.Fatal("no classes")
	}
	for _, c := range AllClasses() {
		if c.String() == "" {
			t.Fatalf("class %d has no name", c)
		}
	}
	if got := len(AllPhases()); got == 0 {
		t.Fatal("no phases")
	}
	for _, p := range AllPhases() {
		if p.String() == "" {
			t.Fatalf("phase %d has no name", p)
		}
	}
	if !sort.StringsAreSorted(KnownCounters()) {
		t.Fatalf("KnownCounters not sorted: %v", KnownCounters())
	}
	if !sort.StringsAreSorted(KnownSpans()) {
		t.Fatalf("KnownSpans not sorted: %v", KnownSpans())
	}
}
