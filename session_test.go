package dynamo

import (
	"encoding/json"
	"errors"
	"testing"

	"dynamo/internal/memory"
)

func TestSessionRun(t *testing.T) {
	s, err := New(smallConfig(),
		WithPolicy("dynamo-reuse-pn"),
		WithThreads(4),
		WithScale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.AMOs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Policy != "dynamo-reuse-pn" {
		t.Fatalf("policy = %q", res.Policy)
	}
}

func TestSessionMatchesDeprecatedRun(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, WithThreads(2), WithScale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := s.Run("tc")
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := Run(Options{Workload: "tc", Threads: 2, Scale: 0.1, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(viaSession)
	b, _ := json.Marshal(viaRun)
	if string(a) != string(b) {
		t.Fatal("Session.Run and deprecated Run disagree")
	}
}

func TestSessionValidatesEagerly(t *testing.T) {
	if _, err := New(smallConfig(), WithPolicy("nope")); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("New with bad policy: %v", err)
	}
	if _, err := New(smallConfig(), WithThreads(99)); err == nil {
		t.Fatal("New accepted more threads than cores")
	}
}

func TestSentinelErrors(t *testing.T) {
	s, err := New(smallConfig(), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("nope"); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("Run unknown workload: %v", err)
	}
	// The deprecated entry points surface the same sentinels.
	cfg := smallConfig()
	if _, err := Run(Options{Workload: "nope", Config: &cfg}); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("deprecated Run unknown workload: %v", err)
	}
	if _, err := RunCounter("nope", 2, 10, true, &cfg); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("deprecated RunCounter unknown policy: %v", err)
	}
}

func TestSessionRunCounter(t *testing.T) {
	s, err := New(smallConfig(), WithPolicy("unique-near"), WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunCounter(30, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.AMOs < 4*30 {
		t.Fatalf("counter run performed %d AMOs", res.AMOs)
	}
}

func TestSessionRunPrograms(t *testing.T) {
	s, err := New(smallConfig(), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	const addr = 0x1000
	prog := func(th *Thread) {
		for i := 0; i < 8; i++ {
			th.AMOStore(memory.AMOAdd, addr, 1)
		}
		th.Fence()
	}
	res, read, err := s.RunPrograms([]Program{prog, prog})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("empty result")
	}
	if got := read(addr); got != 16 {
		t.Fatalf("counter = %d, want 16", got)
	}
}

func TestSessionProfileRequiresObs(t *testing.T) {
	s, err := New(smallConfig(), WithThreads(2), WithProfile(NewProfiler(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunPrograms([]Program{func(th *Thread) {}}); err == nil {
		t.Fatal("WithProfile without WithObs accepted")
	}
}

func TestPublicRunnerSweep(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(WithJobs(2), WithCacheDir(dir))
	req := SweepRequest{Workload: "tc", Threads: 2, Scale: 0.05}
	h1 := r.Submit(req)
	h2 := r.Submit(req)
	res1, err := h1.Result()
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := h2.Result()
	if res1 != res2 {
		t.Fatal("duplicate submissions did not share a result")
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Requests != 2 || st.Submitted != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A second runner on the same cache directory recalls the result.
	warm := NewRunner(WithJobs(2), WithCacheDir(dir))
	if _, err := warm.Run(req); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Simulated() != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v", st)
	}
}

func TestPublicRunnerVariant(t *testing.T) {
	r := NewRunner(WithJobs(2))
	if _, err := r.Run(SweepRequest{Workload: "tc", Threads: 2, Scale: 0.05,
		Variant: "nonsense"}); err == nil {
		t.Fatal("unknown variant ran")
	}
	res, err := r.Run(SweepRequest{Workload: "tc", Threads: 2, Scale: 0.05,
		Variant: "noc-1c"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("variant run returned empty result")
	}
}
