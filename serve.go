package dynamo

import (
	"time"

	"dynamo/internal/runner"
	"dynamo/internal/service"
)

// SweepService is a running sweep control plane (see Serve): an HTTP/JSON
// API over a shared Runner that accepts whole sweeps, schedules
// concurrent sweeps fairly (round-robin admission across sweeps) on one
// worker pool, serves results out of the content-addressed cache, and
// survives restarts through persisted sweep documents plus job
// checkpoints.
//
// Routes: POST /v1/sweeps, GET|DELETE /v1/sweeps/{id},
// GET /v1/jobs/{digest}, GET /v1/jobs/{digest}/span, plus the telemetry
// endpoints (/metrics, /progress, /jobs) on the same listener.
type SweepService struct {
	svc *service.Service
	srv *service.Server
}

// SweepStatus is one sweep's point-in-time standing as reported by the
// service and client: per-job states and digests, counts, and an ETA.
type SweepStatus = service.SweepStatus

// SweepJobStatus is one job's standing inside a SweepStatus.
type SweepJobStatus = service.JobStatus

// SweepClient talks to a sweep service over HTTP. Submitted requests are
// plain SweepRequests; results come back as the exact cache-entry bytes
// the server holds on disk, so remote and local sweeps are
// byte-identical.
type SweepClient = service.Client

// ErrSweepNotFound marks a sweep id or job digest the service does not
// know (HTTP 404 on the wire).
var ErrSweepNotFound = service.ErrNotFound

// ErrServiceDraining rejects submissions while the service shuts down
// (HTTP 503 on the wire).
var ErrServiceDraining = service.ErrDraining

// ErrServiceOverloaded rejects a sweep the bounded admission queue
// (ServiceMaxQueued) cannot hold — HTTP 429 on the wire. Backpressure,
// not failure: a client with retries enabled backs off and resubmits.
var ErrServiceOverloaded = service.ErrOverloaded

// ErrSweepWaitTimeout marks a SweepClient Wait or Execute that ran out
// of its deadline (RemoteDeadline / SweepClient.Deadline) before the
// sweep turned terminal.
var ErrSweepWaitTimeout = service.ErrWaitTimeout

// ErrLeaseExpired rejects a fleet worker's heartbeat or commit whose
// lease no longer exists — its TTL lapsed and the job was reassigned
// (HTTP 410 on the wire). See ServiceWorkers.
var ErrLeaseExpired = service.ErrLeaseExpired

// ErrStaleCommit rejects a fleet worker's commit bearing a fencing token
// that is not the job's live lease (HTTP 409 on the wire). Byte-identical
// duplicates of the committed result are acknowledged idempotently
// instead — commits are at-most-once per job.
var ErrStaleCommit = service.ErrStaleCommit

// Serve starts a sweep service on addr (host:port; ":0" picks a free
// port). ServiceCacheDir is required — the cache is what the service
// serves. With ServiceResume, persisted sweeps reload and interrupted
// jobs restore from their checkpoints, so a restart continues exactly
// where the previous process stopped.
func Serve(addr string, opts ...ServiceOption) (*SweepService, error) {
	var c serviceConfig
	c.fill(opts)
	svc, err := service.New(service.Options{
		CacheDir:  c.cacheDir,
		Jobs:      c.jobs,
		Retries:   c.retries,
		CkptEvery: c.ckptEvery,
		Resume:    c.resume,
		Telemetry: c.telemetry,
		Log:       c.log,
		MaxQueued: c.maxQueued,
		Preempt:   c.preempt,
		Workers:   c.workers,
		LeaseTTL:  c.leaseTTL,
	})
	if err != nil {
		return nil, err
	}
	srv, err := service.Serve(addr, svc)
	if err != nil {
		svc.Close()
		return nil, err
	}
	return &SweepService{svc: svc, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *SweepService) Addr() string { return s.srv.Addr() }

// Drain stops accepting sweeps and interrupts in-flight jobs so they
// checkpoint; queued jobs stay persisted for a later ServiceResume
// start. Drain returns once the pool is empty and is idempotent —
// dynamo-serve calls it on SIGTERM.
func (s *SweepService) Drain() { s.svc.Drain() }

// Wait blocks until every accepted sweep is quiescent (for one-shot
// hosts and tests).
func (s *SweepService) Wait() { s.svc.Wait() }

// Close drains the service, stops the HTTP listener and releases the
// runner's resources.
func (s *SweepService) Close() error {
	first := s.srv.Close()
	if err := s.svc.Close(); first == nil {
		first = err
	}
	return first
}

// Dial builds a client for a sweep service at addr ("host:port", scheme
// optional). The client retries refused connections briefly, so a server
// mid-restart is transparent.
func Dial(addr string) *SweepClient { return service.Dial(addr) }

// RemoteOption tunes the client a WithRemote runner dials with.
type RemoteOption func(*service.Client)

// RemoteDeadline bounds every remote job's wait and stamps submitted
// sweeps with a wire deadline, so the server abandons work the caller
// stopped watching (expired jobs report ErrSweepWaitTimeout).
func RemoteDeadline(d time.Duration) RemoteOption {
	return func(c *service.Client) { c.Deadline = d }
}

// RemoteRetries bounds the client's per-call retries of transient
// transport failures and 429/503 pushback (see SweepClient.Retries).
func RemoteRetries(n int) RemoteOption {
	return func(c *service.Client) { c.Retries = n }
}

// WithRemote routes a Runner's job execution to a sweep service at addr:
// the local runner keeps its pool, dedupe, stats and telemetry
// semantics, but every cache-missing job runs on the server and comes
// back as the server's cache-entry bytes. Combine with an empty cache
// directory to make the server the single source of truth.
func WithRemote(addr string, opts ...RemoteOption) RunnerOption {
	client := service.Dial(addr)
	for _, opt := range opts {
		opt(client)
	}
	// The interrupt-aware seam: cancelling or preempting a local job
	// aborts its remote wait promptly and best-effort cancels the sweep
	// server-side, instead of polling to the job's natural end.
	return func(o *runner.Options) { o.ExecuteInterruptible = client.ExecuteInterruptible }
}

// FleetWorker is one process of the distributed execution tier: it pulls
// jobs from a sweep service started with ServiceWorkers (or dynamo-serve
// -workers), executes them locally, heartbeats — shipping checkpoints —
// while they run, and commits results under fenced TTL leases. The
// dynamo-worker command wraps one. See FleetWorkerOptions.
type FleetWorker = service.Worker

// FleetWorkerOptions configures a FleetWorker.
type FleetWorkerOptions = service.WorkerOptions

// FleetWorkerStats counts what a FleetWorker did.
type FleetWorkerStats = service.WorkerStats

// NewFleetWorker builds a fleet worker (call Start to begin pulling work
// and Drain for a graceful finish-or-checkpoint shutdown).
func NewFleetWorker(opts FleetWorkerOptions) *FleetWorker {
	return service.NewWorker(opts)
}
