// Package dynamo is the public API of the DynAMO reproduction: a
// cycle-level simulator of a 32-core AMBA 5 CHI system with near and far
// atomic memory operations, the static AMO placement policies of Table I,
// the DynAMO predictors of Section V, and the 21 workload analogs the
// paper evaluates.
//
// Quick start:
//
//	s, err := dynamo.New(dynamo.DefaultConfig(),
//		dynamo.WithPolicy("dynamo-reuse-pn"),
//		dynamo.WithThreads(32))
//	if err != nil { ... }
//	res, err := s.Run("histogram")
//	fmt.Printf("%d cycles, APKI %.1f\n", res.Cycles, res.APKI)
//
// For sweeps over many (workload, policy) pairs, use Runner: it dedupes
// identical runs, executes on a bounded worker pool, and persists results
// so repeated sweeps simulate nothing.
//
// Every run validates the workload's functional result (histograms sum,
// sorted output is sorted, BFS distances match a serial reference), so a
// lost atomic update anywhere in the simulated protocol fails the run.
package dynamo

import (
	"fmt"

	"dynamo/internal/chaos"
	"dynamo/internal/check"
	"dynamo/internal/core"
	"dynamo/internal/cpu"
	"dynamo/internal/machine"
	"dynamo/internal/obs"
	"dynamo/internal/obs/profile"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
	"dynamo/internal/trace"
	"dynamo/internal/workload"
)

// Config is the full system configuration (Table II defaults).
type Config = machine.Config

// Result summarizes a completed run.
type Result = machine.Result

// DefaultConfig returns the paper's Table II system: 32 out-of-order
// cores, 64 KiB L1D + 512 KiB L2 per core, 32x1 MiB exclusive LLC slices
// on an 8x8 mesh, and 8-channel HBM3-class memory.
func DefaultConfig() Config { return machine.DefaultConfig() }

// Policies returns the registered placement policy names: the five static
// policies of Table I plus the three DynAMO predictors.
func Policies() []string { return core.Names() }

// StaticPolicies returns the Table I policy names in table order.
func StaticPolicies() []string { return core.StaticNames() }

// DynamicPolicies returns the DynAMO predictor names.
func DynamicPolicies() []string { return core.DynamicNames() }

// Workloads returns the 21 Table III workload names in paper order.
func Workloads() []string { return workload.TableIIIOrder() }

// WorkloadInfo describes one registered workload.
type WorkloadInfo struct {
	Name  string
	Code  string
	Suite string
	Sync  string
	// Class is "L", "M" or "H" — the APKI intensity set of Fig. 6.
	Class string
	// Inputs lists the accepted input variants (first is the default).
	Inputs []string
}

// DescribeWorkload returns metadata for a workload name.
func DescribeWorkload(name string) (WorkloadInfo, error) {
	s, err := workload.Get(name)
	if err != nil {
		return WorkloadInfo{}, err
	}
	return WorkloadInfo{
		Name: s.Name, Code: s.Code, Suite: s.Suite, Sync: s.Sync,
		Class: s.Class.String(), Inputs: s.Inputs,
	}, nil
}

// ObsBus collects transaction-level observability data during a run: latency
// histograms per transaction class and pipeline phase, component-occupancy
// spans, predictor telemetry and, optionally, a Chrome trace-event timeline.
type ObsBus = obs.Bus

// ObsReport is the deterministic digest of a run's observability data,
// attached to Result.Obs when a bus was passed via Options.Obs.
type ObsReport = obs.Report

// CheckReport summarizes a sanitized run's audit counters and occupancy
// maxima, attached to Result.Check when the sanitizer was enabled
// (WithCheck). A report is always Clean: a violated run errors instead.
type CheckReport = check.Report

// HostPerfReport is the host-performance self-profile of a run —
// events/sec, ns/event, sampled wall-clock attribution per subsystem,
// event-queue depth and heap deltas — attached to Result.HostPerf when
// profiling was enabled (WithHostPerf). Host wall-clock is inherently
// non-deterministic, so the report is excluded from JSON serialization
// and never enters result caches or checkpoint digests.
type HostPerfReport = perf.Report

// ObsOption configures an observability bus built with NewObs.
type ObsOption func(*obs.Options)

// WithTimeline buffers per-event timeline data for ObsBus.WriteTimeline.
// Memory grows with the run; intended for scaled-down runs that will be
// inspected visually. Histograms and counters are always collected.
func WithTimeline() ObsOption {
	return func(o *obs.Options) { o.Timeline = true }
}

// NewObs creates an observability bus to pass via WithObs (or the
// deprecated Options.Obs). By default only histograms and counters are
// collected; add WithTimeline for the Chrome trace-event export.
func NewObs(opts ...ObsOption) *ObsBus {
	var o obs.Options
	for _, opt := range opts {
		opt(&o)
	}
	return obs.New(o)
}

// Profiler is the per-cacheline contention profiler: a bounded top-K table
// of the hottest AMO lines with near/far placement, snoop and HN-occupancy
// detail, attributed to workload sites. Pass one via Options.Profile
// (requires Options.Obs) and call Report or Table afterwards.
type Profiler = profile.Profiler

// NewProfiler creates a contention profiler tracking the k hottest lines
// (0 selects the default of profile.DefaultTopK).
func NewProfiler(k int) *Profiler { return profile.NewProfiler(k) }

// IntervalRecorder collects interval telemetry: every period ticks it
// snapshots instruction, latency, NoC and HBM counters into a bounded ring
// of per-interval records. Pass one via Options.Interval and call Series
// afterwards.
type IntervalRecorder = profile.Recorder

// NewIntervalRecorder creates an interval recorder sampling every period
// ticks and keeping at most capacity records (0 selects
// profile.DefaultIntervalCap).
func NewIntervalRecorder(period int64, capacity int) *IntervalRecorder {
	return profile.NewRecorder(sim.Tick(period), capacity)
}

// HotReport is the rendered contention profile: the top-K hottest AMO
// cache lines with site attribution.
type HotReport = profile.HotReport

// ContentionReport renders the profiler's hot-line table, attributing
// lines to the workload sites registered on the bus during the run.
func ContentionReport(p *Profiler, bus *ObsBus) *HotReport {
	return p.Report(bus.SiteOf)
}

// ProbeClasses lists the transaction classes the probe bus distinguishes.
func ProbeClasses() []string {
	var out []string
	for _, c := range obs.AllClasses() {
		out = append(out, c.String())
	}
	return out
}

// ProbePhases lists the transaction pipeline phases the probe bus times.
func ProbePhases() []string {
	var out []string
	for _, p := range obs.AllPhases() {
		out = append(out, p.String())
	}
	return out
}

// ProbeCounters lists the free-form counter names the simulator publishes.
func ProbeCounters() []string { return obs.KnownCounters() }

// ProbeSpans lists the occupancy/stall span names the simulator publishes.
func ProbeSpans() []string { return obs.KnownSpans() }

// Options selects what to run.
//
// Deprecated: build a Session with New and functional options instead;
// Options remains as the carrier for the deprecated Run entry point.
type Options struct {
	// Workload is a Table III workload name (see Workloads).
	Workload string
	// Policy is a placement policy name (see Policies). Empty selects
	// "all-near", the paper's baseline.
	Policy string
	// Threads is the number of worker threads; 0 selects the core count.
	Threads int
	// Seed drives all pseudo-random choices (default 1).
	Seed int64
	// Scale multiplies the default problem size (0 = 1.0).
	Scale float64
	// Input selects a workload input variant ("" = default).
	Input string
	// Config overrides the system configuration (nil = DefaultConfig).
	Config *Config
	// SkipValidation disables the post-run functional check (benchmarks).
	SkipValidation bool
	// Trace, when non-nil, records every executed thread operation.
	Trace *trace.Writer
	// Obs, when non-nil, collects transaction-level observability data
	// (latency histograms and, if the bus enables it, a timeline). The
	// run's digest lands in Result.Obs; call Obs.WriteTimeline afterwards
	// for the Chrome trace-event export.
	Obs *obs.Bus
	// Profile, when non-nil, collects the per-cacheline contention profile.
	// Requires Obs: the profiler attaches to the bus as its contention
	// observer, and workload site annotations are registered on the bus so
	// the report can attribute hot lines.
	Profile *profile.Profiler
	// Interval, when non-nil, collects interval telemetry during the run.
	// Class-latency and counter deltas are only populated when Obs is also
	// set; traffic counters (NoC, HBM, instructions) always are.
	Interval *profile.Recorder
	// Check attaches the protocol invariant sanitizer (see WithCheck).
	Check bool
	// HostPerf attaches the host-performance self-profiler (see
	// WithHostPerf); the run's report lands in Result.HostPerf.
	HostPerf bool
	// ChaosSeed and ChaosLevel attach the deterministic fault injector
	// (see WithChaos). Setting one defaults the other to 1; both zero
	// leave the run unperturbed.
	ChaosSeed  int64
	ChaosLevel int
	// CkptEvery and CkptSink enable periodic checkpoint capture (see
	// WithCheckpoint).
	CkptEvery uint64
	CkptSink  func(*Checkpoint)
	// Interrupt cancels the run once signaled or closed (see
	// WithInterrupt).
	Interrupt <-chan struct{}
	// resume restores the run from a checkpoint (Session.Resume).
	resume *Checkpoint
}

func (o Options) fill() (Options, Config, error) {
	cfg := DefaultConfig()
	if o.Config != nil {
		cfg = *o.Config
	}
	if o.Policy == "" {
		o.Policy = "all-near"
	}
	cfg.Policy = o.Policy
	if o.Threads == 0 {
		o.Threads = cfg.Chi.Cores
	}
	if o.Threads > cfg.Chi.Cores {
		return o, cfg, fmt.Errorf("dynamo: %d threads exceed %d cores", o.Threads, cfg.Chi.Cores)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ChaosSeed != 0 && o.ChaosLevel == 0 {
		o.ChaosLevel = 1
	}
	if o.ChaosLevel > 0 && o.ChaosSeed == 0 {
		o.ChaosSeed = 1
	}
	if o.ChaosLevel < 0 || o.ChaosLevel > chaos.MaxLevel {
		return o, cfg, fmt.Errorf("dynamo: chaos level %d out of range 0..%d", o.ChaosLevel, chaos.MaxLevel)
	}
	return o, cfg, nil
}

// sessionFrom adapts a deprecated Options carrier into a Session, so the
// deprecated entry points are genuine one-line Session delegates.
func sessionFrom(opts Options) (*Session, error) {
	filled, cfg, err := opts.fill()
	if err != nil {
		return nil, err
	}
	filled.Config = &cfg
	return &Session{cfg: cfg, opts: filled}, nil
}

// Run executes one workload under one policy and returns its metrics. The
// workload's functional result is validated unless SkipValidation is set.
//
// Deprecated: Use New(cfg, ...Option) and Session.Run; Run remains as a
// one-line Session delegate and behaves identically.
func Run(opts Options) (*Result, error) {
	s, err := sessionFrom(opts)
	if err != nil {
		return nil, err
	}
	return s.Run(opts.Workload)
}

// RunCounter executes the Fig. 1 shared-counter microbenchmark: threads
// threads each performing ops atomic increments, with AtomicStore
// (noReturn) or AtomicLoad semantics.
//
// Deprecated: Use New(cfg, WithPolicy(policy), WithThreads(threads)) and
// Session.RunCounter; RunCounter remains as a one-line Session delegate.
func RunCounter(policy string, threads, ops int, noReturn bool, cfg *Config) (*Result, error) {
	s, err := sessionFrom(Options{Policy: policy, Threads: threads, Config: cfg})
	if err != nil {
		return nil, err
	}
	return s.RunCounter(ops, noReturn)
}

// attachChaos wires the fault injector selected by opts into a built
// machine (a no-op when chaos is off). Must run between machine.New and
// Run so every perturbation hook is in place before the first event.
func attachChaos(m *machine.Machine, opts Options) error {
	if opts.ChaosLevel == 0 {
		return nil
	}
	inj, err := chaos.New(opts.ChaosSeed, opts.ChaosLevel)
	if err != nil {
		return err
	}
	inj.Attach(m)
	return nil
}

func runInstance(cfg Config, inst *workload.Instance, opts Options) (*Result, error) {
	if opts.Trace != nil {
		observe, flush := trace.Recorder(opts.Trace)
		cfg.CPU.Observe = observe
		defer flush()
	}
	cfg.Obs = opts.Obs
	cfg.Interval = opts.Interval
	cfg.CkptEvery = opts.CkptEvery
	cfg.CkptSink = opts.CkptSink
	cfg.Interrupt = opts.Interrupt
	if opts.Check {
		cfg.Check = &check.Config{}
	}
	if opts.HostPerf {
		cfg.Perf = perf.New(0)
	}
	if opts.Profile != nil {
		if opts.Obs == nil {
			return nil, fmt.Errorf("dynamo: Options.Profile requires Options.Obs")
		}
		opts.Obs.AttachContention(opts.Profile)
	}
	for _, s := range inst.Sites {
		opts.Obs.RegisterSite(s)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := attachChaos(m, opts); err != nil {
		return nil, err
	}
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	var res *Result
	if opts.resume != nil {
		res, err = m.RunFrom(inst.Programs, opts.resume)
	} else {
		res, err = m.Run(inst.Programs)
	}
	if err != nil {
		return nil, err
	}
	if !opts.SkipValidation {
		if err := inst.Validate(m.Sys.Data); err != nil {
			return nil, fmt.Errorf("dynamo: functional validation failed: %w", err)
		}
	}
	return res, nil
}

// Thread is the API custom programs use to issue simulated operations:
// Load, Store, AMO, CAS, AMOStore, Compute, Fence and the release
// variants. Value-returning operations block the simulated core;
// stores and AtomicStores are posted.
type Thread = cpu.Thread

// Program is custom workload code: one function per simulated thread.
type Program = cpu.Program

// RunPrograms is the low-level entry point: it runs arbitrary programs
// (at most one per core) on a machine built from cfg and returns the
// metrics plus a read function for inspecting final memory contents.
//
// Deprecated: Use New(cfg, ...Option) and Session.RunPrograms;
// RunPrograms remains as a one-line Session delegate.
func RunPrograms(cfg Config, programs []Program) (*Result, func(addr uint64) uint64, error) {
	s, err := sessionFrom(Options{Policy: cfg.Policy, Config: &cfg})
	if err != nil {
		return nil, nil, err
	}
	return s.RunPrograms(programs)
}
